(* The observability layer (Vpga_obs): span balance and nesting, the
   counter/gauge registry, the ambient-trace mechanism, Chrome trace-event
   export and readback, the per-stage report, and the contracts the flow
   depends on — tracing changes no result, counters are jobs-independent,
   stage spans cover (almost) all of the flow's wall time, and recovery
   events land on the trace timeline. *)

open Vpga_flow
(* after the open: Vpga_flow also has an Export module (artifacts), so
   the observability aliases must shadow it, not the other way round *)
module Clock = Vpga_obs.Clock
module Span = Vpga_obs.Span
module Trace = Vpga_obs.Trace
module Json = Vpga_obs.Json
module Export = Vpga_obs.Export
module Pool = Vpga_par.Pool
module Log = Vpga_resil.Log
module Arch = Vpga_plb.Arch

let alu4 = lazy (Vpga_designs.Alu.build ~width:4 ())

(* --- Clock ------------------------------------------------------------ *)

let test_clock_monotonic () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare b a >= 0);
  Alcotest.(check (float 1e-9)) "ns_to_s" 1.5 (Clock.ns_to_s 1_500_000_000L)

(* --- Spans ------------------------------------------------------------ *)

let test_span_nesting () =
  let t = Trace.create ~label:"spans" () in
  let r =
    Trace.with_span t "outer" (fun () ->
        Trace.with_span t "inner1" (fun () -> ());
        Trace.with_span t "inner2" (fun () ->
            Trace.with_span t "leaf" (fun () -> ()));
        42)
  in
  Alcotest.(check int) "result through spans" 42 r;
  Alcotest.(check int) "balanced" 0 (Trace.open_spans t);
  (* A span records when it closes: children precede their parents. *)
  let names =
    List.filter_map
      (function Span.Complete { name; depth; _ } -> Some (name, depth) | _ -> None)
      (Trace.events t)
  in
  Alcotest.(check (list (pair string int)))
    "close order and depth"
    [ ("inner1", 1); ("leaf", 2); ("inner2", 1); ("outer", 0) ]
    names;
  (* Children fit inside their parent's interval. *)
  let find n =
    List.find_map
      (function
        | Span.Complete { name; ts_ns; dur_ns; _ } when name = n ->
            Some (ts_ns, Int64.add ts_ns dur_ns)
        | _ -> None)
      (Trace.events t)
    |> Option.get
  in
  let os, oe = find "outer" and is_, ie = find "inner2" in
  Alcotest.(check bool) "child starts after parent" true (is_ >= os);
  Alcotest.(check bool) "child ends before parent" true (ie <= oe)

let test_span_balance_on_exception () =
  let t = Trace.create () in
  (try
     Trace.with_span t "outer" (fun () ->
         Trace.with_span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "balanced after raise" 0 (Trace.open_spans t);
  Alcotest.(check int) "both spans recorded" 2 (List.length (Trace.events t))

let test_span_manual_and_double_close () =
  let t = Trace.create () in
  let s = Trace.begin_span t "manual" in
  Alcotest.(check int) "open" 1 (Trace.open_spans t);
  Trace.end_span s;
  Trace.end_span s;
  Alcotest.(check int) "closed once" 1 (List.length (Trace.events t));
  Alcotest.(check int) "no longer open" 0 (Trace.open_spans t)

let test_null_trace_no_ops () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Trace.with_span t "s" (fun () -> ());
  Trace.add t "c" 1.0;
  Trace.set t "g" 2.0;
  Trace.instant t "i";
  let c = Trace.Counter.make t "c" in
  Trace.Counter.incr c;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events t));
  Alcotest.(check int) "no counters" 0 (List.length (Trace.counters t))

(* --- Counters / gauges ------------------------------------------------ *)

let test_counter_registry () =
  let t = Trace.create () in
  Trace.add t "b" 1.0;
  Trace.add t "a" 2.0;
  Trace.add t "b" 3.0;
  Trace.set t "g" 7.0;
  Trace.set t "g" 9.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "counters accumulate, name-sorted"
    [ ("a", 2.0); ("b", 4.0) ]
    (Trace.counters t);
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge keeps latest" [ ("g", 9.0) ] (Trace.gauges t);
  let h = Trace.Counter.make t "a" in
  Trace.Counter.incr h;
  Trace.Counter.add h 10.0;
  Alcotest.(check (float 0.0)) "handle shares the slot" 13.0 (Trace.Counter.value h);
  let g = Trace.Gauge.make t "g" in
  Trace.Gauge.set g 1.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge handle" [ ("g", 1.0) ] (Trace.gauges t)

let test_ambient_scoping () =
  let t = Trace.create () in
  Trace.emit "outside" 1.0;
  Trace.with_ambient t (fun () -> Trace.emit "inside" 2.0);
  Trace.emit "outside" 1.0;
  Alcotest.(check (list (pair string (float 0.0))))
    "only in-scope emissions land" [ ("inside", 2.0) ]
    (Trace.counters t);
  (* with_span installs the ambient trace too. *)
  let t2 = Trace.create () in
  Trace.with_span t2 "s" (fun () -> Trace.emit "k" 5.0);
  Alcotest.(check (list (pair string (float 0.0))))
    "with_span installs ambient" [ ("k", 5.0) ]
    (Trace.counters t2)

(* --- JSON ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Arr [ Json.Num 1.0; Json.Num 2.5; Json.Null ]);
        ("s", Json.Str "q\"uo\\te\n");
        ("b", Json.Bool true);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')

let test_json_escapes_and_errors () =
  (match Json.parse {|"Aé"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse");
  (match Json.parse "{\"a\": 1} garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated array accepted"

(* --- Chrome export ---------------------------------------------------- *)

let traced_flow ?log ?(seed = 11) () =
  let t = Trace.create ~tid:3 ~label:"alu/granular" () in
  let pair =
    Flow.run ~seed ?log ~trace:t Arch.granular_plb (Lazy.force alu4)
  in
  (t, pair)

let test_chrome_export_valid () =
  let t, _ = traced_flow () in
  let doc = Export.chrome ~process_name:"test" [ t ] in
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome doc is not valid JSON: %s" e
  | Ok doc' -> (
      match Json.member "traceEvents" doc' with
      | Some (Json.Arr events) ->
          Alcotest.(check bool) "has events" true (List.length events > 10);
          List.iter
            (fun ev ->
              let has k = Json.member k ev <> None in
              Alcotest.(check bool) "event has name" true (has "name");
              Alcotest.(check bool) "event has ph" true (has "ph");
              Alcotest.(check bool) "event has pid" true (has "pid"))
            events;
          (* Every complete event's ts is relative to the earliest one. *)
          let ts_of ev = Option.bind (Json.member "ts" ev) Json.to_float in
          let tss = List.filter_map ts_of events in
          Alcotest.(check bool)
            "timestamps rebased to zero" true
            (List.for_all (fun ts -> ts >= 0.0) tss
            && List.exists (fun ts -> ts = 0.0) tss)
      | _ -> Alcotest.fail "no traceEvents array")

let test_flow_span_coverage () =
  let t, _ = traced_flow () in
  let root_dur = ref 0.0 and stage_dur = ref 0.0 in
  List.iter
    (function
      | Span.Complete { name; dur_ns; depth; _ } ->
          let d = Clock.ns_to_s dur_ns in
          if depth = 0 then begin
            Alcotest.(check string) "single root is the flow span" "flow" name;
            root_dur := !root_dur +. d
          end
          else if depth = 1 then stage_dur := !stage_dur +. d
      | Span.Instant _ -> ())
    (Trace.events t);
  Alcotest.(check bool) "root span present" true (!root_dur > 0.0);
  let coverage = !stage_dur /. !root_dur in
  if coverage < 0.95 then
    Alcotest.failf "stage spans cover %.1f%% of the flow (< 95%%)"
      (100.0 *. coverage);
  (* The taxonomy's tentpole stages all appear. *)
  let names =
    List.filter_map
      (function
        | Span.Complete { name; depth = 1; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " span present") true
        (List.mem stage names))
    [
      "map"; "pack:quadrisect"; "place:anneal"; "route:a"; "route:b";
      "sta:a"; "sta:b"; "verify:packing";
    ]

let test_flow_counters_populated () =
  let t, _ = traced_flow () in
  let c = Trace.counters t in
  let has n = List.mem_assoc n c in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " counted") true (has n))
    [
      "anneal.walks"; "anneal.moves"; "anneal.accepted";
      "route.ripup_iterations"; "route.nets"; "cuts.nodes";
      "cuts.enumerated";
    ];
  Alcotest.(check bool) "moves > 0" true (List.assoc "anneal.moves" c > 0.0)

let test_resil_events_on_timeline () =
  (* Events recorded into the caller's log land on the trace timeline as
     instants, tagged with their stage. *)
  let log = Log.create () in
  Log.record log (Log.Degraded { stage = "verify:cec"; what = "budget" });
  Log.record log
    (Log.Retry { stage = "route"; attempt = 1; reason = "overflow" });
  let t, _ = traced_flow ~log () in
  let instants =
    List.filter_map
      (function Span.Instant { name; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  Alcotest.(check bool) "degrade instant" true
    (List.mem "resil:degrade" instants);
  Alcotest.(check bool) "retry instant" true (List.mem "resil:retry" instants)

let test_trace_off_same_result () =
  let nl = Lazy.force alu4 in
  let run trace = Flow.run ~seed:7 ~trace Arch.granular_plb nl in
  let a = run Trace.null in
  let b = run (Trace.create ()) in
  let check name f = Alcotest.(check (float 0.0)) name (f a) (f b) in
  check "die a" (fun p -> p.Flow.a.Flow.die_area);
  check "die b" (fun p -> p.Flow.b.Flow.die_area);
  check "wire a" (fun p -> p.Flow.a.Flow.wirelength);
  check "wire b" (fun p -> p.Flow.b.Flow.wirelength);
  check "slack b" (fun p -> p.Flow.b.Flow.avg_top10_slack);
  check "power b" (fun p -> p.Flow.b.Flow.power_uw);
  Alcotest.(check int) "vias b" b.Flow.b.Flow.routed_vias
    a.Flow.b.Flow.routed_vias

let test_report_rendering () =
  let t, _ = traced_flow () in
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  Export.report_traces fmt [ t ];
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  let contains sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length out && (String.sub out i n = sub || go (i + 1))
    in
    go 0
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("report mentions " ^ s) true (contains s))
    [ "flow"; "place:anneal"; "anneal.moves" ]

let test_stage_totals () =
  let t, _ = traced_flow () in
  let totals = Export.stage_totals [ t; Trace.null ] in
  Alcotest.(check bool) "nonempty" true (totals <> []);
  let names = List.map fst totals in
  Alcotest.(check (list string)) "name-sorted" (List.sort compare names) names;
  Alcotest.(check bool) "no root in stage totals" true
    (not (List.mem "flow" names));
  Alcotest.(check bool) "all positive" true
    (List.for_all (fun (_, s) -> s >= 0.0) totals)

(* --- Sweep integration ------------------------------------------------ *)

let test_sweep_counters_jobs_independent () =
  let designs = [ ("ALU", Lazy.force alu4) ] in
  let sweep jobs =
    Experiments.run_tasks ~seed:1 ~jobs ~traced:true ~designs Experiments.Test
  in
  let c1 = List.map (fun r -> Trace.counters r.Experiments.t_trace) (sweep 1) in
  let c4 = List.map (fun r -> Trace.counters r.Experiments.t_trace) (sweep 4) in
  Alcotest.(check (list (list (pair string (float 0.0)))))
    "counters jobs=1 == jobs=4" c1 c4;
  Alcotest.(check bool) "counters nonempty" true
    (List.for_all (fun c -> c <> []) c1)

let test_pool_run_stats () =
  let tasks = List.init 8 (fun i -> fun () -> Unix.sleepf 0.002; i) in
  let results, st = Pool.run_stats ~jobs:4 tasks in
  Alcotest.(check (list int)) "results" (List.init 8 Fun.id) results;
  Alcotest.(check int) "tasks counted" 8 st.Pool.tasks;
  Alcotest.(check int) "one busy slot per worker" 4
    (Array.length st.Pool.busy_ns);
  let total_busy = Array.fold_left Int64.add 0L st.Pool.busy_ns in
  Alcotest.(check bool) "workers were busy" true (total_busy > 0L);
  Alcotest.(check bool) "queue wait non-negative" true
    (st.Pool.queue_wait_ns >= 0L);
  (* Inline execution: one busy slot, zero queue wait. *)
  let _, st1 = Pool.run_stats ~jobs:1 [ (fun () -> ()); (fun () -> ()) ] in
  Alcotest.(check int) "inline tasks" 2 st1.Pool.tasks;
  Alcotest.(check int) "inline busy slots" 1 (Array.length st1.Pool.busy_ns);
  Alcotest.(check bool) "inline no queue wait" true
    (st1.Pool.queue_wait_ns = 0L)

(* --- Resil log timestamps --------------------------------------------- *)

let test_log_timestamps () =
  let log = Log.create () in
  Log.record log (Log.Retry { stage = "s"; attempt = 1; reason = "r" });
  Log.record log (Log.Escalation { stage = "s"; what = "w" });
  Log.record log (Log.Degraded { stage = "s"; what = "w" });
  let timed = Log.timed log in
  Alcotest.(check int) "all recorded" 3 (List.length timed);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        Int64.compare a.Log.at_ns b.Log.at_ns <= 0 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (nondecreasing timed);
  (* The string rendering predates the timestamps and must not change:
     failure records and tests key on it. *)
  Alcotest.(check (list string))
    "event_to_string stable"
    [
      "retry s (attempt 1): r"; "escalate s: w"; "degrade s: w";
    ]
    (Log.strings log)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and close order" `Quick test_span_nesting;
          Alcotest.test_case "balance on exception" `Quick
            test_span_balance_on_exception;
          Alcotest.test_case "manual and double close" `Quick
            test_span_manual_and_double_close;
          Alcotest.test_case "null trace no-ops" `Quick test_null_trace_no_ops;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counter_registry;
          Alcotest.test_case "ambient scoping" `Quick test_ambient_scoping;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes and errors" `Quick
            test_json_escapes_and_errors;
        ] );
      ( "flow tracing",
        [
          Alcotest.test_case "chrome export is valid JSON" `Quick
            test_chrome_export_valid;
          Alcotest.test_case "stage spans cover the flow" `Quick
            test_flow_span_coverage;
          Alcotest.test_case "inner-loop counters populated" `Quick
            test_flow_counters_populated;
          Alcotest.test_case "resil events become instants" `Quick
            test_resil_events_on_timeline;
          Alcotest.test_case "tracing changes no result" `Quick
            test_trace_off_same_result;
          Alcotest.test_case "report renders stages" `Quick
            test_report_rendering;
          Alcotest.test_case "stage totals" `Quick test_stage_totals;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "counters jobs=1 == jobs=4" `Slow
            test_sweep_counters_jobs_independent;
          Alcotest.test_case "pool run_stats" `Quick test_pool_run_stats;
        ] );
      ( "resil log",
        [ Alcotest.test_case "timestamps" `Quick test_log_timestamps ] );
    ]
