(* Tests for the resilience layer: the typed-failure / policy / recovery-log
   plumbing, the seeded fault-injection harness (every corruption must be
   caught by vpga_verify, with zero silent pass-throughs), the flow's
   retry-with-escalation ladders (routing capacity, anneal restarts, CEC
   conflict budgets), sweep fault isolation, and determinism under retries
   (a retried flow stays byte-identical whatever [jobs] is). *)

module Netlist = Vpga_netlist.Netlist
module Equiv = Vpga_netlist.Equiv
module Arch = Vpga_plb.Arch
module Compact = Vpga_mapper.Compact
module Buffering = Vpga_place.Buffering
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Quadrisect = Vpga_pack.Quadrisect
module Pathfinder = Vpga_route.Pathfinder
module Diag = Vpga_verify.Diag
module Lint = Vpga_verify.Lint
module Cec = Vpga_verify.Cec
module Phys = Vpga_verify.Phys
module Fail = Vpga_resil.Fail
module Policy = Vpga_resil.Policy
module Log = Vpga_resil.Log
module Retry = Vpga_resil.Retry
module Inject = Vpga_resil.Inject
module Flow = Vpga_flow.Flow
module Experiments = Vpga_flow.Experiments
open Vpga_designs

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let has_diag code f =
  List.exists (fun (d : Diag.t) -> d.Diag.code = code) f.Fail.diags

(* --- policy / log / retry / fail plumbing ------------------------------ *)

let test_policy_names () =
  Alcotest.(check string) "default" "default" (Policy.name Policy.default);
  Alcotest.(check string) "strict" "strict" (Policy.name Policy.strict);
  (match Policy.of_name "strict" with
  | Some p -> Alcotest.(check int) "strict is one attempt" 1 p.Policy.max_attempts
  | None -> Alcotest.fail "strict must resolve");
  Alcotest.(check bool) "unknown rejected" true (Policy.of_name "yolo" = None);
  Alcotest.(check bool) "default retries" true
    (Policy.default.Policy.max_attempts > 1)

let test_log_recorder () =
  let log = Log.create () in
  Log.record log (Log.Retry { stage = "s"; attempt = 1; reason = "r" });
  Log.record log (Log.Escalation { stage = "s"; what = "w" });
  Log.record log (Log.Degraded { stage = "s"; what = "d" });
  (match Log.events log with
  | [ Log.Retry { attempt = 1; _ }; Log.Escalation _; Log.Degraded _ ] -> ()
  | _ -> Alcotest.fail "events must come back oldest first");
  let s = Log.summary log in
  Alcotest.(check int) "retries" 1 s.Log.retries;
  Alcotest.(check int) "escalations" 1 s.Log.escalations;
  Alcotest.(check int) "degraded" 1 s.Log.degraded;
  Alcotest.(check int) "add" 2 (Log.add s s).Log.retries;
  Alcotest.(check (list string))
    "rendered trail"
    [ "retry s (attempt 1): r"; "escalate s: w"; "degrade s: d" ]
    (Log.strings log)

let test_retry_driver () =
  let policy = { Policy.default with Policy.max_attempts = 4 } in
  let log = Log.create () in
  let v =
    Retry.run ~log ~policy ~stage:"st" ~design:"d" (fun attempt ->
        if attempt < 2 then Error "nope" else Ok (attempt * 10))
  in
  Alcotest.(check int) "succeeds on attempt 2" 20 v;
  Alcotest.(check int) "two retries logged" 2 (Log.summary log).Log.retries;
  let log = Log.create () in
  match
    Retry.run ~log ~policy ~stage:"st" ~design:"d" (fun _ -> Error "always")
  with
  | _ -> Alcotest.fail "exhaustion must raise"
  | exception Fail.Stage_failure f ->
      Alcotest.(check string) "stage" "st" f.Fail.stage;
      Alcotest.(check string) "design" "d" f.Fail.design;
      Alcotest.(check int) "attempts" 4 f.Fail.attempts;
      Alcotest.(check bool) "typed diag" true (has_diag "retries-exhausted" f);
      Alcotest.(check int) "event trail carried" 3 (List.length f.Fail.events)

let test_reseed () =
  Alcotest.(check int) "attempt 0 is the seed itself" 42
    (Retry.reseed ~seed:42 ~attempt:0);
  let s1 = Retry.reseed ~seed:42 ~attempt:1 in
  let s2 = Retry.reseed ~seed:42 ~attempt:2 in
  Alcotest.(check bool) "attempts step" true (s1 <> 42 && s2 <> 42 && s1 <> s2);
  Alcotest.(check bool) "stays in 30 bits" true
    (s1 >= 0 && s1 land 0x3FFFFFFF = s1)

let test_fail_adoption () =
  let f = Fail.of_exn ~stage:"s" ~design:"d" ~attempts:2 (Failure "boom") in
  Alcotest.(check bool) "Failure adopted" true (has_diag "stage-failed" f);
  let g = Fail.of_exn ~stage:"other" ~design:"x" ~attempts:9 (Fail.Stage_failure f) in
  Alcotest.(check string) "payload passes through" "s" g.Fail.stage;
  let h = Fail.of_exn ~stage:"s" ~design:"d" ~attempts:1 Exit in
  Alcotest.(check bool) "raw exception adopted" true (has_diag "stage-exception" h);
  Alcotest.(check bool) "message counts attempts" true
    (contains (Fail.to_string f) "after 2 attempts")

let test_fit_error_message () =
  (* Satellite: the fit guard must name the design, the dims it tried and
     the residual unplaced count — not just "design does not fit". *)
  let fe = { Quadrisect.design = "widget"; dims_tried = [ 4; 5; 7 ]; unplaced = 3 } in
  let msg = Quadrisect.fit_error_to_string fe in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in message") true (contains msg needle))
    [ "widget"; "3 item(s)"; "7x7"; "4x4, 5x5, 7x7" ]

(* --- fault injection: every corruption is caught ----------------------- *)

(* One packed + routed ALU shared by the physical injections (the same
   fixture shape test_verify uses). *)
let packed =
  lazy
    (let nl = Alu.build ~width:4 () in
     let arch = Arch.granular_plb in
     let buffered = Buffering.insert ~max_fanout:8 (Compact.run arch nl) in
     let pl = Placement.create buffered in
     Global.place ~seed:3 pl;
     let q = Quadrisect.legalize arch pl in
     let side = sqrt arch.Arch.tile_area in
     let pl =
       {
         pl with
         Placement.die_w = float_of_int q.Quadrisect.cols *. side;
         die_h = float_of_int q.Quadrisect.rows *. side;
       }
     in
     Quadrisect.snap q pl;
     (buffered, pl, q))

let inject_seeds = [ 1; 2; 3; 4; 5 ]

let test_inject_netlist () =
  let reference = Alu.build ~width:2 () in
  let nl = Alu.build ~width:2 () in
  List.iter
    (fun seed ->
      let fault = Inject.netlist_flip ~seed nl in
      (* The SAT-based checker is complete, so any silent pass-through of a
         live-cone rewire here is a real verification hole. *)
      let caught =
        Diag.has_errors (Lint.run nl)
        ||
        match Cec.check reference nl with
        | Cec.Inequivalent _ -> true
        | Cec.Equivalent -> false
      in
      Alcotest.(check bool) (fault.Inject.what ^ " caught") true caught;
      fault.Inject.undo ();
      match Cec.check reference nl with
      | Cec.Equivalent -> ()
      | Cec.Inequivalent _ -> Alcotest.fail "undo must restore the netlist")
    inject_seeds

let test_inject_placement () =
  let _, pl, _ = Lazy.force packed in
  let clean () = not (Diag.has_errors (Phys.check_placement pl)) in
  Alcotest.(check bool) "fixture is clean" true (clean ());
  List.iter
    (fun seed ->
      let fault = Inject.placement_unplace ~seed pl in
      Alcotest.(check bool) (fault.Inject.what ^ " caught") true
        (Diag.has_code "unplaced" (Phys.check_placement pl));
      fault.Inject.undo ();
      Alcotest.(check bool) "undo restores" true (clean ());
      let fault = Inject.placement_offdie ~seed pl in
      Alcotest.(check bool) (fault.Inject.what ^ " caught") true
        (Diag.has_code "outside-die" (Phys.check_placement pl));
      fault.Inject.undo ();
      Alcotest.(check bool) "undo restores" true (clean ()))
    inject_seeds

let test_inject_packing () =
  let buffered, _, q = Lazy.force packed in
  let clean () = not (Diag.has_errors (Phys.check_packing q buffered)) in
  Alcotest.(check bool) "fixture is clean" true (clean ());
  List.iter
    (fun seed ->
      let fault = Inject.packing_uncover ~seed q in
      Alcotest.(check bool) (fault.Inject.what ^ " caught") true
        (Diag.has_code "uncovered" (Phys.check_packing q buffered));
      fault.Inject.undo ();
      Alcotest.(check bool) "undo restores" true (clean ());
      let fault = Inject.packing_overfill ~seed q buffered in
      Alcotest.(check bool) (fault.Inject.what ^ " caught") true
        (Diag.has_code "tile-overflow" (Phys.check_packing q buffered));
      fault.Inject.undo ();
      Alcotest.(check bool) "undo restores" true (clean ()))
    inject_seeds

let test_inject_routing () =
  let _, pl, _ = Lazy.force packed in
  let routed = ref (Pathfinder.route_placement pl) in
  let pristine = !routed in
  Alcotest.(check bool) "fixture routes cleanly" false
    (Diag.has_errors (Phys.check_routing !routed pl));
  List.iter
    (fun seed ->
      let fault = Inject.route_drop_edge ~seed routed in
      let ds = Phys.check_routing !routed pl in
      Alcotest.(check bool) (fault.Inject.what ^ " caught") true
        (Diag.has_code "route-disconnected" ds || Diag.has_code "route-forest" ds);
      fault.Inject.undo ();
      Alcotest.(check bool) (fault.Inject.what ^ " undone") true
        (!routed == pristine))
    inject_seeds

(* --- retry-with-escalation ladders ------------------------------------- *)

let find_event p log = List.exists p (Log.events log)

let test_route_escalation_heals () =
  (* Start the router at channel capacity 1: the first attempt overflows
     and the ladder must widen the channel until detailed routing succeeds
     (vias >= 0 proves the run healed rather than degraded). *)
  let nl = Alu.build ~width:2 () in
  let policy =
    { Policy.default with Policy.route_capacity = Some 1; max_attempts = 6 }
  in
  let log = Log.create () in
  let pair =
    Flow.run ~seed:3 ~anneal_iterations:1_000 ~policy ~log Arch.granular_plb nl
  in
  Alcotest.(check bool) "flow completes" true (pair.Flow.a.Flow.die_area > 0.0);
  Alcotest.(check bool) "detailed routing ran (flow a)" true
    (pair.Flow.a.Flow.routed_vias >= 0);
  Alcotest.(check bool) "detailed routing ran (flow b)" true
    (pair.Flow.b.Flow.routed_vias >= 0);
  Alcotest.(check bool) "a route escalation was recorded" true
    (find_event
       (function
         | Log.Escalation { stage; what } ->
             contains stage "route:" && contains what "channel capacity"
         | _ -> false)
       log);
  Alcotest.(check bool) "no degraded guarantee" true
    ((Log.summary log).Log.degraded = 0)

let test_anneal_restart () =
  (* An absurd starting temperature turns the annealer into a random walk
     whose final cost exceeds its starting cost; the policy must restore
     the pre-anneal placement and restart cooler (1e9 * 1e-9 = 1.0). *)
  let nl = Alu.build ~width:2 () in
  let policy =
    {
      Policy.default with
      Policy.anneal_t_start = Some 1e9;
      anneal_cooling = 1e-9;
      max_attempts = 3;
    }
  in
  let log = Log.create () in
  let pair =
    Flow.run ~seed:3 ~anneal_iterations:2_000 ~policy ~log Arch.granular_plb nl
  in
  Alcotest.(check bool) "flow completes" true (pair.Flow.a.Flow.die_area > 0.0);
  Alcotest.(check bool) "an anneal restart was recorded" true
    (find_event
       (function
         | Log.Retry { stage = "place:anneal"; reason; _ } ->
             contains reason "diverged"
         | _ -> false)
       log)

let test_cec_bounded_undecided () =
  let nl = Alu.build ~width:4 () in
  let compacted = Compact.run Arch.granular_plb nl in
  (match Cec.check_bounded ~max_conflicts:1 nl compacted with
  | Cec.Undecided -> ()
  | Cec.Proved -> Alcotest.fail "1 conflict cannot prove the compacted ALU"
  | Cec.Refuted _ -> Alcotest.fail "compaction is sound");
  (* Unbounded, the same pair is provable. *)
  match Cec.check nl compacted with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.fail "compaction is sound"

let test_cec_degrades_to_fast () =
  (* An empty conflict-budget ladder (and a hopeless 1-conflict one) must
     degrade Formal -> Fast with a recorded warning instead of aborting:
     one Degraded event per formal stage (techmap, compact, buffer). *)
  let nl = Alu.build ~width:2 () in
  List.iter
    (fun budgets ->
      let policy = { Policy.default with Policy.cec_budgets = budgets } in
      let log = Log.create () in
      let pair =
        Flow.run ~seed:3 ~anneal_iterations:1_000 ~verify:Flow.Formal ~policy
          ~log Arch.granular_plb nl
      in
      Alcotest.(check bool) "flow completes" true
        (pair.Flow.a.Flow.die_area > 0.0);
      let degraded =
        List.filter
          (function
            | Log.Degraded { stage; what } ->
                contains stage "verify:" && contains what "SAT proof undecided"
            | _ -> false)
          (Log.events log)
      in
      Alcotest.(check bool) "every formal stage degraded" true
        (List.length degraded >= 3))
    [ []; [ Some 1 ] ]

let test_cec_budget_escalation () =
  (* [Some 1; None]: the first budget comes back Undecided on at least the
     compaction proof (see [test_cec_bounded_undecided]), so the ladder
     must escalate to the unbounded solve and then prove — no degradation. *)
  let nl = Alu.build ~width:4 () in
  let policy = { Policy.default with Policy.cec_budgets = [ Some 1; None ] } in
  let log = Log.create () in
  let pair =
    Flow.run ~seed:3 ~anneal_iterations:1_000 ~verify:Flow.Formal ~policy ~log
      Arch.granular_plb nl
  in
  Alcotest.(check bool) "flow completes" true (pair.Flow.a.Flow.die_area > 0.0);
  Alcotest.(check bool) "budget escalation recorded" true
    (find_event
       (function
         | Log.Escalation { stage; what } ->
             contains stage "verify:" && contains what "conflict budget 1 -> unbounded"
         | _ -> false)
       log);
  Alcotest.(check int) "proved, not degraded" 0 (Log.summary log).Log.degraded

(* --- sweep fault isolation --------------------------------------------- *)

let test_sweep_isolation () =
  (* One design is corrupted (an undriven flop drives a primary output):
     its two tasks must come back as typed failure records while the
     healthy design's tasks complete. *)
  let good = Alu.build ~width:2 () in
  let bad = Alu.build ~width:2 () in
  ignore (Netlist.output bad "bad_q" (Netlist.dff bad));
  let reports =
    Experiments.run_tasks ~seed:1 ~jobs:2
      ~designs:[ ("Good", good); ("Bad", bad) ]
      Experiments.Test
  in
  Alcotest.(check int) "2 designs x 2 archs" 4 (List.length reports);
  List.iter
    (fun (r : Experiments.task_report) ->
      match (r.Experiments.t_design, r.Experiments.t_result) with
      | "Good", Ok pair ->
          Alcotest.(check bool) "healthy task completed" true
            (pair.Flow.a.Flow.die_area > 0.0)
      | "Good", Error f ->
          Alcotest.fail ("healthy task failed: " ^ Fail.to_string f)
      | "Bad", Error f ->
          Alcotest.(check bool) "failure names a verify stage" true
            (contains f.Fail.stage "verify:");
          Alcotest.(check bool) "failure carries diagnostics" true
            (f.Fail.diags <> [])
      | "Bad", Ok _ -> Alcotest.fail "corrupted design passed verification"
      | d, _ -> Alcotest.fail ("unexpected design " ^ d))
    reports

(* --- determinism under retries ----------------------------------------- *)

let check_outcomes_identical label (a : Flow.outcome) (b : Flow.outcome) =
  Alcotest.(check (float 0.0)) (label ^ " die area") a.Flow.die_area b.Flow.die_area;
  Alcotest.(check (float 0.0)) (label ^ " wns") a.Flow.wns b.Flow.wns;
  Alcotest.(check (float 0.0)) (label ^ " wirelength") a.Flow.wirelength b.Flow.wirelength;
  Alcotest.(check (float 0.0)) (label ^ " slack") a.Flow.avg_top10_slack b.Flow.avg_top10_slack;
  Alcotest.(check int) (label ^ " tiles") a.Flow.tiles_used b.Flow.tiles_used;
  Alcotest.(check int) (label ^ " vias") a.Flow.routed_vias b.Flow.routed_vias;
  Alcotest.(check bool) (label ^ " config histogram") true
    (a.Flow.config_histogram = b.Flow.config_histogram)

let test_determinism_under_retries () =
  (* Force both survivable ladders — routing escalations (capacity 1) and
     anneal restarts (absurd t_start) — and require the sweep to stay
     byte-identical between jobs=1 and jobs=4, recovery counters included. *)
  let policy =
    {
      Policy.default with
      Policy.route_capacity = Some 1;
      max_attempts = 6;
      anneal_t_start = Some 1e9;
      anneal_cooling = 1e-9;
    }
  in
  let designs =
    [ ("ALU2", Alu.build ~width:2 ()); ("ALU4", Alu.build ~width:4 ()) ]
  in
  let sweep jobs =
    Experiments.run_tasks ~seed:1 ~jobs ~policy ~designs Experiments.Test
  in
  let sequential = sweep 1 in
  let parallel = sweep 4 in
  List.iter2
    (fun (r1 : Experiments.task_report) (r2 : Experiments.task_report) ->
      Alcotest.(check string) "design" r1.Experiments.t_design r2.Experiments.t_design;
      let label = r1.Experiments.t_design ^ "/" ^ r1.Experiments.t_arch.Arch.name in
      (match (r1.Experiments.t_result, r2.Experiments.t_result) with
      | Ok p1, Ok p2 ->
          check_outcomes_identical (label ^ "/a") p1.Flow.a p2.Flow.a;
          check_outcomes_identical (label ^ "/b") p1.Flow.b p2.Flow.b
      | _ -> Alcotest.fail (label ^ ": forced sweep must still complete"));
      let s1 = r1.Experiments.t_recovery and s2 = r2.Experiments.t_recovery in
      Alcotest.(check int) (label ^ " retries") s1.Log.retries s2.Log.retries;
      Alcotest.(check int) (label ^ " escalations") s1.Log.escalations s2.Log.escalations;
      Alcotest.(check int) (label ^ " degraded") s1.Log.degraded s2.Log.degraded)
    sequential parallel;
  (* The comparison is only meaningful if retries actually happened. *)
  let total = Experiments.recovery sequential in
  Alcotest.(check bool) "ladders were exercised" true (total.Log.retries >= 2);
  Alcotest.(check bool) "escalations recorded" true (total.Log.escalations >= 1)

let () =
  Alcotest.run "vpga_resil"
    [
      ( "plumbing",
        [
          Alcotest.test_case "policy names" `Quick test_policy_names;
          Alcotest.test_case "log recorder" `Quick test_log_recorder;
          Alcotest.test_case "retry driver" `Quick test_retry_driver;
          Alcotest.test_case "reseed" `Quick test_reseed;
          Alcotest.test_case "failure adoption" `Quick test_fail_adoption;
          Alcotest.test_case "fit-error message" `Quick test_fit_error_message;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "netlist flip" `Quick test_inject_netlist;
          Alcotest.test_case "placement" `Quick test_inject_placement;
          Alcotest.test_case "packing" `Quick test_inject_packing;
          Alcotest.test_case "routing" `Quick test_inject_routing;
        ] );
      ( "escalation",
        [
          Alcotest.test_case "route capacity heals" `Quick
            test_route_escalation_heals;
          Alcotest.test_case "anneal restart" `Quick test_anneal_restart;
          Alcotest.test_case "cec bounded undecided" `Quick
            test_cec_bounded_undecided;
          Alcotest.test_case "cec degrades to fast" `Quick
            test_cec_degrades_to_fast;
          Alcotest.test_case "cec budget escalation" `Slow
            test_cec_budget_escalation;
        ] );
      ( "isolation",
        [ Alcotest.test_case "one bad design" `Quick test_sweep_isolation ] );
      ( "determinism",
        [
          Alcotest.test_case "retried sweep jobs=1 == jobs=4" `Slow
            test_determinism_under_retries;
        ] );
    ]
