(* Tests for the static-analysis layer: the ternary lattice and its
   fixed-point evaluation, the dataflow passes against hand-seeded
   netlists, the CEC-certified simplifier over every benchmark x
   architecture, the region-ownership sanitizer (statically via
   [Ownership.check] and dynamically via a forced cross-region write),
   and the guarantee that arming the sanitizer changes no refinement
   results. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
module Packer = Vpga_plb.Packer
module Occupancy = Vpga_plb.Occupancy
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Buffering = Vpga_place.Buffering
module Quadrisect = Vpga_pack.Quadrisect
module Refine = Vpga_pack.Refine
module Diag = Vpga_verify.Diag
module Cec = Vpga_verify.Cec
module Dataflow = Vpga_dataflow.Dataflow
module Ternary = Vpga_analysis.Ternary
module Constprop = Vpga_analysis.Constprop
module Xprop = Vpga_analysis.Xprop
module Redund = Vpga_analysis.Redund
module Simplify = Vpga_analysis.Simplify
module Ownership = Vpga_analysis.Ownership
module Analysis = Vpga_analysis.Analysis
module Pass = Vpga_analysis.Pass
module Inject = Vpga_resil.Inject
module Experiments = Vpga_flow.Experiments

(* --- ternary lattice --- *)

let tern = Alcotest.testable (Fmt.of_to_string Ternary.to_string) Ternary.equal

let test_ternary_join () =
  let open Ternary in
  List.iter
    (fun x -> Alcotest.check tern "bot is identity" x (join Bot x))
    [ Bot; C0; C1; Def; Und ];
  Alcotest.check tern "constants clash to def" Def (join C0 C1);
  Alcotest.check tern "und absorbs" Und (join Def Und);
  Alcotest.check tern "und absorbs constants" Und (join C1 Und);
  Alcotest.check tern "idempotent" C0 (join C0 C0);
  (* Commutativity over the whole lattice. *)
  List.iter
    (fun a ->
      List.iter
        (fun b -> Alcotest.check tern "commutative" (join a b) (join b a))
        [ Bot; C0; C1; Def; Und ])
    [ Bot; C0; C1; Def; Und ]

(* Masking is the heart of ternary eval: a controlling constant hides
   any unknown on the other pin. *)
let test_ternary_eval_masking () =
  let open Ternary in
  Alcotest.check tern "AND(X, 0) = 0" C0 (eval Kind.And2 [| Und; C0 |]);
  Alcotest.check tern "OR(X, 1) = 1" C1 (eval Kind.Or2 [| Und; C1 |]);
  Alcotest.check tern "NAND(0, X) = 1" C1 (eval Kind.Nand2 [| C0; Und |]);
  Alcotest.check tern "XOR(X, 0) = X" Und (eval Kind.Xor2 [| Und; C0 |]);
  Alcotest.check tern "XOR(def, 0) = def" Def (eval Kind.Xor2 [| Def; C0 |]);
  Alcotest.check tern "MUX(0, d0=1, X) = 1" C1
    (eval Kind.Mux2 [| C0; C1; Und |]);
  Alcotest.check tern "MAJ(0, 0, X) = 0" C0 (eval Kind.Maj3 [| C0; C0; Und |]);
  Alcotest.check tern "INV(1) = 0" C0 (eval Kind.Inv [| C1 |]);
  Alcotest.check tern "bot poisons" Bot (eval Kind.And2 [| Bot; C0 |])

(* The flop_init knob is what splits constant propagation from
   X-propagation on the same engine. *)
let test_ternary_flop_init () =
  let nl = Netlist.create () in
  let q = Netlist.dff nl in
  let a = Netlist.input nl "a" in
  let g = Netlist.gate nl Kind.And2 [| q; a |] in
  Netlist.connect nl ~flop:q ~d:g;
  let y = Netlist.output nl "y" g in
  (* Reset-0 flop ANDed into its own D pin: the whole cone is stuck-0. *)
  let cp = Ternary.values ~flop_init:Ternary.C0 nl in
  Alcotest.check tern "constprop: flop stuck at 0" Ternary.C0 cp.(q);
  Alcotest.check tern "constprop: output stuck at 0" Ternary.C0 cp.(y);
  (* Uninitialized flop: the X reaches the output. *)
  let xp = Ternary.values ~flop_init:Ternary.Und nl in
  Alcotest.check tern "xprop: flop is X" Ternary.Und xp.(q);
  Alcotest.check tern "xprop: output is X" Ternary.Und xp.(y)

(* --- dataflow engine primitives --- *)

let test_dataflow_traversals () =
  (* reachable: chain 0 -> 1 -> 2 with 3 dangling. *)
  let next = function 0 -> [| 1 |] | 1 -> [| 2 |] | _ -> [||] in
  let r = Dataflow.reachable ~n:4 ~roots:[ 0 ] ~next in
  Alcotest.(check (list bool))
    "cone of node 0" [ true; true; true; false ]
    (Array.to_list r);
  (* cyclic_sccs: 2-cycle {0,1}, self-loop {3}, acyclic 2. *)
  let succ = function 0 -> [| 1 |] | 1 -> [| 0 |] | 3 -> [| 3 |] | _ -> [||] in
  let sccs = List.map (List.sort compare) (Dataflow.cyclic_sccs ~n:4 ~succ) in
  let sccs = List.sort compare sccs in
  Alcotest.(check (list (list int))) "cyclic sccs" [ [ 0; 1 ]; [ 3 ] ] sccs

(* --- passes against hand-seeded netlists --- *)

let test_constprop_finds_seeded_constant () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let zero = Netlist.gate nl (Kind.Const false) [||] in
  let stuck = Netlist.gate nl Kind.And2 [| a; zero |] in
  let live = Netlist.gate nl Kind.Or2 [| stuck; a |] in
  ignore (Netlist.output nl "y" live);
  let r = Constprop.run nl in
  Alcotest.(check bool)
    "const-logic flagged" true
    (Diag.has_code "const-logic" r.Pass.diags);
  let found = List.assoc "analysis.constants_found" r.Pass.counters in
  Alcotest.(check bool) "counter counts the stuck gate" true (found >= 1.0)

let test_xprop_finds_uninitialized_flop () =
  let nl = Netlist.create () in
  let q = Netlist.dff nl in
  let a = Netlist.input nl "a" in
  Netlist.connect nl ~flop:q ~d:a;
  (* q is X at t=0 regardless of a, and it reaches the output. *)
  ignore (Netlist.output nl "y" (Netlist.gate nl Kind.Xor2 [| q; a |]));
  let r = Xprop.run nl in
  Alcotest.(check bool)
    "x-output flagged" true
    (Diag.has_code "x-output" r.Pass.diags);
  Alcotest.(check bool)
    "x_nodes counted" true
    (List.assoc "analysis.x_nodes" r.Pass.counters >= 1.0);
  (* A masked X must stay silent: AND with constant 0 hides the flop. *)
  let ok = Netlist.create () in
  let q = Netlist.dff ok in
  let b = Netlist.input ok "b" in
  Netlist.connect ok ~flop:q ~d:b;
  let zero = Netlist.gate ok (Kind.Const false) [||] in
  ignore (Netlist.output ok "y" (Netlist.gate ok Kind.And2 [| q; zero |]));
  Alcotest.(check bool)
    "masked flop is clean" false
    (Diag.has_code "x-output" (Xprop.run ok).Pass.diags)

let test_redund_finds_structural_duplicate () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let g1 = Netlist.gate nl Kind.And2 [| a; b |] in
  let g2 = Netlist.gate nl Kind.And2 [| a; b |] in
  ignore (Netlist.output nl "y" (Netlist.gate nl Kind.Or2 [| g1; g2 |]));
  let r = Redund.run nl in
  Alcotest.(check bool)
    "strash-dup flagged" true
    (Diag.has_code "strash-dup" r.Pass.diags)

(* --- pass manager --- *)

let test_analysis_pass_selection () =
  let nl = Vpga_designs.Alu.build ~width:4 () in
  let a = Analysis.run ~passes:[ "constprop"; "fanout" ] nl in
  Alcotest.(check (list string))
    "only the selected passes ran" [ "constprop"; "fanout" ]
    (List.map (fun r -> r.Pass.name) a.Analysis.reports);
  let full = Analysis.run nl in
  Alcotest.(check (list string))
    "default runs all passes in order" Analysis.pass_names
    (List.map (fun r -> r.Pass.name) full.Analysis.reports);
  (* Every counter the manager aggregates is namespaced for the trace. *)
  List.iter
    (fun (k, _) ->
      Alcotest.(check bool)
        (k ^ " is namespaced") true
        (String.length k > 9 && String.sub k 0 9 = "analysis."))
    (Analysis.counters full)

(* --- simplifier soundness: CEC-proven on every benchmark x arch --- *)

(* [Simplify.checked] already gates on CEC internally; the property here
   is end-to-end: on every benchmark design and each post-techmap form,
   the certification must come back Equivalent (the "simplified" or
   "simplify-noop" info), never "simplify-unsound". *)
let test_simplify_preserves_equivalence () =
  List.iter
    (fun (dname, nl) ->
      let check_on label nl =
        let nl', stats, diags = Simplify.checked nl in
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s: no refuted rewrite" dname label)
          false
          (Diag.has_code "simplify-unsound" diags);
        if Simplify.total stats > 0 then begin
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: rewrites certified" dname label)
            true
            (Diag.has_code "simplified" diags);
          (* Belt and braces: re-prove the returned netlist directly. *)
          match Cec.check nl nl' with
          | Cec.Equivalent -> ()
          | Cec.Inequivalent _ ->
              Alcotest.failf "%s/%s: simplified netlist not equivalent" dname
                label
        end
      in
      check_on "source" nl;
      List.iter
        (fun arch -> check_on arch.Arch.name (Techmap.map arch nl))
        [ Arch.lut_plb; Arch.granular_plb ])
    (Experiments.designs Experiments.Test)

(* --- ownership sanitizer, static half --- *)

(* One legalized ALU, shared by the ownership and refinement tests. *)
let packed =
  lazy
    (Config.prewarm ();
     let nl = Vpga_designs.Alu.build ~width:8 () in
     let arch = Arch.lut_plb in
     let buffered = Buffering.insert ~max_fanout:8 (Compact.run arch nl) in
     let pl = Placement.create buffered in
     Global.place ~seed:3 pl;
     let q = Quadrisect.legalize arch pl in
     let side = sqrt arch.Arch.tile_area in
     let pl =
       {
         pl with
         Placement.die_w = float_of_int q.Quadrisect.cols *. side;
         die_h = float_of_int q.Quadrisect.rows *. side;
       }
     in
     Quadrisect.snap q pl;
     (q, pl))

let test_ownership_clean_on_real_legalization () =
  let q, _ = Lazy.force packed in
  List.iter
    (fun regions ->
      if min q.Quadrisect.cols q.Quadrisect.rows >= regions then begin
        let r = Ownership.check ~regions q in
        Alcotest.(check bool)
          (Printf.sprintf "%dx%d grid is race-free" regions regions)
          false (Diag.has_errors r.Ownership.diags);
        Alcotest.(check bool)
          "assertions were actually evaluated" true
          (r.Ownership.checks > 0)
      end)
    [ 1; 2; 3 ]

let test_ownership_catches_offdie_tile () =
  let q, _ = Lazy.force packed in
  let q' =
    { q with Quadrisect.tile_of_node = Array.copy q.Quadrisect.tile_of_node }
  in
  (* Corrupt one packed node to an off-die tile index. *)
  let i =
    let rec find i =
      if q'.Quadrisect.tile_of_node.(i) >= 0 then i else find (i + 1)
    in
    find 0
  in
  q'.Quadrisect.tile_of_node.(i) <- q'.Quadrisect.cols * q'.Quadrisect.rows;
  let r = Ownership.check ~regions:1 q' in
  Alcotest.(check bool)
    "tile-range violation is an error" true
    (Diag.has_code "tile-range" r.Ownership.diags
    && Diag.has_errors r.Ownership.diags)

(* --- ownership sanitizer, dynamic half --- *)

(* A 2x4 toy die: tiles 0-3 stamped region 0, tiles 4-7 region 1. *)
let stamped_tiles cache =
  let tiles = Array.init 8 (fun _ -> Occupancy.create cache) in
  Array.iteri (fun i t -> Occupancy.set_owner t (if i < 4 then 0 else 1)) tiles;
  tiles

let test_inject_cross_region_caught_when_armed () =
  let cache = Occupancy.create_cache Arch.granular_plb in
  let tiles = stamped_tiles cache in
  (* Arm as region 0's walk: any write into a region-1 tile must trap. *)
  Occupancy.set_writer cache 0;
  (match Inject.occupancy_cross_region ~seed:11 tiles with
  | exception Occupancy.Race { owner; writer } ->
      Alcotest.(check int) "victim owned by the other region" 1 owner;
      Alcotest.(check int) "writer is region 0" 0 writer
  | _ -> Alcotest.fail "armed sanitizer let a cross-region write land");
  Alcotest.(check bool)
    "the faulting write did not land" true
    (Array.for_all Occupancy.is_empty tiles);
  Alcotest.(check bool)
    "guard evaluated at least once" true
    (Occupancy.guard_checks cache > 0)

let test_inject_cross_region_lands_when_disarmed () =
  let cache = Occupancy.create_cache Arch.granular_plb in
  let tiles = stamped_tiles cache in
  (* Writer left at -1: the guard is disarmed, the fault lands silently —
     exactly the latent race the sanitizer exists to catch. *)
  let fault = Inject.occupancy_cross_region ~seed:11 tiles in
  Alcotest.(check int)
    "exactly one tile mutated" 1
    (Array.fold_left (fun n t -> n + Occupancy.count t) 0 tiles);
  fault.Inject.undo ();
  Alcotest.(check bool)
    "undo restores all tiles" true
    (Array.for_all Occupancy.is_empty tiles)

(* --- arming the sanitizer changes no refinement results --- *)

let test_refine_sanitize_is_transparent () =
  let q, pl = Lazy.force packed in
  let run ~jobs ~regions ~sanitize =
    let q' =
      { q with Quadrisect.tile_of_node = Array.copy q.Quadrisect.tile_of_node }
    in
    let pl' =
      {
        pl with
        Placement.x = Array.copy pl.Placement.x;
        y = Array.copy pl.Placement.y;
      }
    in
    let st =
      Refine.run ~iterations:20_000 ~jobs ~regions ~sanitize ~seed:7 q' pl'
    in
    (q'.Quadrisect.tile_of_node, st)
  in
  List.iter
    (fun (jobs, regions) ->
      let plain, st_plain = run ~jobs ~regions ~sanitize:false in
      let armed, st_armed = run ~jobs ~regions ~sanitize:true in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d regions=%d: identical packing" jobs regions)
        (Array.to_list plain) (Array.to_list armed);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d regions=%d: identical move counts" jobs
           regions)
        st_plain.Refine.accepted st_armed.Refine.accepted)
    [ (1, 1); (2, 2); (4, 2) ]

let () =
  Alcotest.run "analysis"
    [
      ( "ternary",
        [
          Alcotest.test_case "join laws" `Quick test_ternary_join;
          Alcotest.test_case "eval masking" `Quick test_ternary_eval_masking;
          Alcotest.test_case "flop_init split" `Quick test_ternary_flop_init;
        ] );
      ( "dataflow",
        [ Alcotest.test_case "traversals" `Quick test_dataflow_traversals ] );
      ( "passes",
        [
          Alcotest.test_case "constprop seeded constant" `Quick
            test_constprop_finds_seeded_constant;
          Alcotest.test_case "xprop uninitialized flop" `Quick
            test_xprop_finds_uninitialized_flop;
          Alcotest.test_case "redundancy structural dup" `Quick
            test_redund_finds_structural_duplicate;
          Alcotest.test_case "pass selection" `Quick
            test_analysis_pass_selection;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "CEC-proven on all benchmarks" `Slow
            test_simplify_preserves_equivalence;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "clean on real legalization" `Quick
            test_ownership_clean_on_real_legalization;
          Alcotest.test_case "off-die tile caught" `Quick
            test_ownership_catches_offdie_tile;
          Alcotest.test_case "armed injection trapped" `Quick
            test_inject_cross_region_caught_when_armed;
          Alcotest.test_case "disarmed injection lands" `Quick
            test_inject_cross_region_lands_when_disarmed;
          Alcotest.test_case "sanitize is transparent" `Slow
            test_refine_sanitize_is_transparent;
        ] );
    ]
