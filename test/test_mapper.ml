(* Tests for the AIG, cut enumeration, FlowMap labeling, technology mapping
   and the regularity-driven compaction step. *)

module Bfun = Vpga_logic.Bfun
module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Equiv = Vpga_netlist.Equiv
module Stats = Vpga_netlist.Stats
module Aig = Vpga_aig.Aig
module Cut = Vpga_aig.Cut
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
open Vpga_mapper

(* --- Aig ---------------------------------------------------------------- *)

let test_strash () =
  let t = Aig.create () in
  let a = Aig.add_pi t and b = Aig.add_pi t in
  let x = Aig.and_ t a b in
  let y = Aig.and_ t b a in
  Alcotest.(check int) "commutative strash" x y;
  Alcotest.(check int) "one and node" 1 (Aig.and_count t);
  Alcotest.(check int) "folding: a & 1 = a" a (Aig.and_ t a Aig.const1);
  Alcotest.(check int) "folding: a & 0 = 0" Aig.const0 (Aig.and_ t a Aig.const0);
  Alcotest.(check int) "folding: a & a = a" a (Aig.and_ t a a);
  Alcotest.(check int) "folding: a & !a = 0" Aig.const0
    (Aig.and_ t a (Aig.not_ a))

let test_aig_eval () =
  let t = Aig.create () in
  let a = Aig.add_pi t and b = Aig.add_pi t and c = Aig.add_pi t in
  let f = Aig.mux_ t ~sel:c a b in
  for m = 0 to 7 do
    let pi = [| m land 1 = 1; m land 2 = 2; m land 4 = 4 |] in
    let expect = if pi.(2) then pi.(1) else pi.(0) in
    Alcotest.(check bool) (Printf.sprintf "mux@%d" m) expect (Aig.eval t pi f)
  done

let prop_add_fn_matches_bfun =
  let bfun3 = QCheck.map (Bfun.make ~arity:3) (QCheck.int_bound 255) in
  QCheck.Test.make ~name:"add_fn realizes the truth table" ~count:256 bfun3
    (fun fn ->
      let t = Aig.create () in
      let args = Array.init 3 (fun _ -> Aig.add_pi t) in
      let l = Aig.add_fn t fn args in
      let ok = ref true in
      for m = 0 to 7 do
        let pi = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
        if Aig.eval t pi l <> Bfun.eval fn m then ok := false
      done;
      !ok)

let counter3 () =
  let nl = Netlist.create ~name:"cnt3" () in
  let en = Netlist.input nl "en" in
  let q0 = Netlist.dff nl and q1 = Netlist.dff nl and q2 = Netlist.dff nl in
  let d0 = Netlist.gate nl Kind.Xor2 [| q0; en |] in
  let c0 = Netlist.gate nl Kind.And2 [| q0; en |] in
  let d1 = Netlist.gate nl Kind.Xor2 [| q1; c0 |] in
  let c1 = Netlist.gate nl Kind.And2 [| q1; c0 |] in
  let d2 = Netlist.gate nl Kind.Xor2 [| q2; c1 |] in
  Netlist.connect nl ~flop:q0 ~d:d0;
  Netlist.connect nl ~flop:q1 ~d:d1;
  Netlist.connect nl ~flop:q2 ~d:d2;
  ignore (Netlist.output nl "b0" q0);
  ignore (Netlist.output nl "b1" q1);
  ignore (Netlist.output nl "b2" q2);
  nl

let test_of_netlist () =
  let nl = counter3 () in
  let b = Aig.of_netlist nl in
  Alcotest.(check int) "pis = 1 input + 3 flops" 4 (Aig.num_pis b.Aig.aig);
  Alcotest.(check int) "roots = 3 outputs + 3 flop Ds" 6
    (List.length b.Aig.roots);
  (* each xor2 costs 3 AND nodes, each and2 one: 3*3 + 2 = 11, with strash
     sharing keeping it there or below *)
  Alcotest.(check bool) "ands bounded" true (Aig.and_count b.Aig.aig <= 11)

(* --- Cut ---------------------------------------------------------------- *)

let test_cuts () =
  let t = Aig.create () in
  let a = Aig.add_pi t and b = Aig.add_pi t and c = Aig.add_pi t in
  let ab = Aig.and_ t a b in
  let abc = Aig.and_ t ab c in
  let cuts = Cut.enumerate t ~k:3 ~max_cuts:8 in
  let top = cuts.(Aig.node_of abc) in
  (* must contain the {a,b,c} cut whose function is and3 *)
  let and3 = Bfun.(var ~arity:3 0 &&& var ~arity:3 1 &&& var ~arity:3 2) in
  Alcotest.(check bool) "{a,b,c} cut found" true
    (List.exists
       (fun cut ->
         Cut.leaf_count cut = 3 && Bfun.equal cut.Cut.tt and3)
       top);
  (* every cut's truth table must evaluate consistently with the AIG *)
  List.iter
    (fun cut ->
      for m = 0 to 7 do
        let pi = Array.init 3 (fun i -> (m lsr i) land 1 = 1) in
        let leaf_vals =
          Array.map
            (fun leaf ->
              if Aig.is_pi t leaf then pi.(Aig.pi_index t leaf)
              else Aig.eval t pi (2 * leaf))
            cut.Cut.leaves
        in
        let idx = ref 0 in
        Array.iteri (fun i v -> if v then idx := !idx lor (1 lsl i)) leaf_vals;
        Alcotest.(check bool) "cut tt consistent"
          (Aig.eval t pi (2 * Aig.node_of abc))
          (Bfun.eval cut.Cut.tt !idx)
      done)
    (List.filter (fun cut -> Cut.leaf_count cut > 1) top)

(* --- FlowMap ------------------------------------------------------------ *)

let and_tree t inputs =
  let rec go = function
    | [] -> Aig.const1
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | a :: b :: rest -> Aig.and_ t a b :: pair rest
          | rest -> rest
        in
        go (pair xs)
  in
  go inputs

let test_flowmap_and6 () =
  let t = Aig.create () in
  let pis = List.init 6 (fun _ -> Aig.add_pi t) in
  let top = and_tree t pis in
  Alcotest.(check int) "and6 needs depth 2 at k=3" 2
    (let labels = Flowmap.labels t ~k:3 in
     labels.(Aig.node_of top))

let test_flowmap_and3 () =
  let t = Aig.create () in
  let pis = List.init 3 (fun _ -> Aig.add_pi t) in
  let top = and_tree t pis in
  let labels = Flowmap.labels t ~k:3 in
  Alcotest.(check int) "and3 fits one level" 1 (labels.(Aig.node_of top))

let test_flowmap_monotone_k () =
  (* larger k never increases depth *)
  let t = Aig.create () in
  let pis = List.init 9 (fun _ -> Aig.add_pi t) in
  let top = and_tree t pis in
  ignore top;
  let d3 = Flowmap.depth t ~k:3 and d4 = Flowmap.depth t ~k:4 in
  Alcotest.(check bool) "monotone in k" true (d4 <= d3);
  (* FlowMap is depth-optimal for the *given* structure: the binary
     pairing tree of and9 forces a 4-PI cone at the second level, so depth 3
     (a restructured 3-ary tree would reach 2; see the next check). *)
  Alcotest.(check int) "and9 pairing tree at k=3" 3 d3;
  let t2 = Aig.create () in
  let tri =
    List.init 3 (fun _ ->
        let a = Aig.add_pi t2 and b = Aig.add_pi t2 and c = Aig.add_pi t2 in
        Aig.and_ t2 (Aig.and_ t2 a b) c)
  in
  let top = and_tree t2 tri in
  let labels = Flowmap.labels t2 ~k:3 in
  Alcotest.(check int) "and9 as 3-ary tree at k=3" 2 (labels.(Aig.node_of top))

let test_flowmap_xor_chain () =
  let t = Aig.create () in
  let a = Aig.add_pi t and b = Aig.add_pi t and c = Aig.add_pi t
  and d = Aig.add_pi t and e = Aig.add_pi t in
  let x1 = Aig.xor_ t a b in
  let x2 = Aig.xor_ t x1 c in
  let x3 = Aig.xor_ t x2 d in
  let x4 = Aig.xor_ t x3 e in
  let labels = Flowmap.labels t ~k:3 in
  (* xor5 chain: xor3 in one 3-cut, then two more vars in a second level *)
  Alcotest.(check int) "xor5 chain depth 2" 2 (labels.(Aig.node_of x4))

(* --- Techmap ------------------------------------------------------------ *)

let full_adder () =
  let nl = Netlist.create ~name:"fa" () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let cin = Netlist.input nl "cin" in
  let sum = Netlist.gate nl Kind.Xor3 [| a; b; cin |] in
  let cout = Netlist.gate nl Kind.Maj3 [| a; b; cin |] in
  ignore (Netlist.output nl "sum" sum);
  ignore (Netlist.output nl "cout" cout);
  nl

let all_nodes_mapped nl =
  Array.for_all
    (fun n ->
      match n.Netlist.kind with
      | Kind.Mapped _ | Kind.Input | Kind.Output | Kind.Dff | Kind.Const _ ->
          true
      | _ -> false)
    (Netlist.nodes nl)

let test_techmap_equivalence () =
  let nl = full_adder () in
  List.iter
    (fun arch ->
      let mapped = Techmap.map arch nl in
      Alcotest.(check bool)
        (arch.Arch.name ^ " all mapped")
        true (all_nodes_mapped mapped);
      match Equiv.check_exhaustive nl mapped with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ ->
          Alcotest.fail (arch.Arch.name ^ ": techmap broke the design"))
    Arch.all

let test_techmap_lut_usage () =
  let nl = full_adder () in
  let lut_mapped = Techmap.map Arch.lut_plb nl in
  let hist = Stats.histogram lut_mapped in
  (* xor3 and maj3 both burn LUTs on the LUT-based PLB *)
  Alcotest.(check int) "two lut3 cells" 2 (List.assoc "lut3" hist);
  let gran_mapped = Techmap.map Arch.granular_plb nl in
  let hist_g = Stats.histogram gran_mapped in
  Alcotest.(check bool) "no lut on granular" true
    (not (List.mem_assoc "lut3" hist_g));
  (* granular: xor3 = xoa + mux, maj3 = decomposed muxes *)
  Alcotest.(check bool) "granular area smaller" true
    (Techmap.cell_area gran_mapped < Techmap.cell_area lut_mapped)

let test_techmap_sequential () =
  let nl = counter3 () in
  List.iter
    (fun arch ->
      let mapped = Techmap.map arch nl in
      match Equiv.check ~seed:11 nl mapped with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ -> Alcotest.fail (arch.Arch.name ^ ": sequential"))
    Arch.all

(* --- Incremental FlowMap labeling --------------------------------------- *)

(* A mid-sized random AIG: deep enough that cones overlap and the
   invalidation rule has real propagation work to do. *)
let random_aig seed =
  let rng = Random.State.make [| seed |] in
  let t = Aig.create () in
  let pis = List.init 6 (fun _ -> Aig.add_pi t) in
  let pool = ref pis in
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  for _ = 1 to 60 do
    let a = pick () and b = pick () in
    let a = if Random.State.bool rng then Aig.not_ a else a in
    let b = if Random.State.bool rng then Aig.not_ b else b in
    pool := Aig.and_ t a b :: !pool
  done;
  t

(* Whatever the dirty sets are, the incremental tracker must always agree
   with from-scratch labeling (here the AIG never changes, so every
   recompute confirms — the compact-iteration scenario). *)
let prop_incremental_labels =
  QCheck.Test.make ~name:"incremental relabel == from-scratch labels"
    ~count:25 QCheck.small_int (fun seed ->
      let t = random_aig seed in
      let n = Aig.size t in
      let want = Flowmap.labels t ~k:3 in
      let inc = Flowmap.Incremental.create t ~k:3 in
      if Flowmap.Incremental.labels inc <> want then
        QCheck.Test.fail_reportf "create disagrees with labels";
      let rng = Random.State.make [| seed + 1 |] in
      for _ = 1 to 4 do
        let dirty =
          List.init
            (Random.State.int rng 8)
            (fun _ -> Random.State.int rng n)
        in
        Flowmap.Incremental.relabel inc ~dirty;
        if Flowmap.Incremental.labels inc <> want then
          QCheck.Test.fail_reportf "relabel with dirty=[%s] diverged"
            (String.concat ";" (List.map string_of_int dirty))
      done;
      true)

(* --- Compact ------------------------------------------------------------ *)

let random_comb_netlist seed =
  let rng = Random.State.make [| seed |] in
  let nl = Netlist.create ~name:"rand" () in
  let pis = Array.init 5 (fun i -> Netlist.input nl (Printf.sprintf "i%d" i)) in
  let pool = ref (Array.to_list pis) in
  let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
  for _ = 1 to 30 do
    let k =
      match Random.State.int rng 7 with
      | 0 -> Kind.And2
      | 1 -> Kind.Or2
      | 2 -> Kind.Xor2
      | 3 -> Kind.Nand2
      | 4 -> Kind.Mux2
      | 5 -> Kind.Maj3
      | _ -> Kind.Inv
    in
    pool := Netlist.gate nl k (Array.init (Kind.arity k) (fun _ -> pick ())) :: !pool
  done;
  ignore (Netlist.output nl "o1" (pick ()));
  ignore (Netlist.output nl "o2" (pick ()));
  nl

(* The traced multi-pass cover selection relabels incrementally after each
   pass; on a fixed AIG the labels must be stable across every pass and
   match the from-scratch reference indirectly via the tracker. *)
let test_compact_traced_passes () =
  let nl = random_comb_netlist 11 in
  List.iter
    (fun arch ->
      let compacted, traces = Compact.run_traced ~passes:3 arch nl in
      Alcotest.(check int)
        (arch.Arch.name ^ ": one trace per pass")
        3 (List.length traces);
      (match traces with
      | first :: rest ->
          Alcotest.(check (list int))
            (arch.Arch.name ^ ": pass 1 has no dirty nodes")
            [] first.Compact.changed;
          List.iter
            (fun tr ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: pass %d labels stable" arch.Arch.name
                   tr.Compact.pass)
                true
                (tr.Compact.labels = first.Compact.labels))
            rest
      | [] -> Alcotest.fail "no traces");
      (* The traced path must agree with the untraced one. *)
      match Equiv.check_exhaustive nl compacted with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ ->
          Alcotest.fail (arch.Arch.name ^ ": traced compaction broke design"))
    Arch.all

let test_compact_multipass_equivalence () =
  let nl = random_comb_netlist 13 in
  List.iter
    (fun arch ->
      match Equiv.check_exhaustive nl (Compact.run ~passes:3 arch nl) with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ ->
          Alcotest.fail (arch.Arch.name ^ ": multi-pass broke design"))
    Arch.all

let prop_compact_equivalence =
  QCheck.Test.make ~name:"compaction preserves function (both archs)"
    ~count:20 QCheck.small_int (fun seed ->
      let nl = random_comb_netlist seed in
      List.for_all
        (fun arch ->
          Equiv.check_exhaustive nl (Compact.run arch nl) = Equiv.Equivalent)
        Arch.all)

let test_compact_sequential () =
  let nl = counter3 () in
  List.iter
    (fun arch ->
      match Equiv.check ~seed:3 nl (Compact.run arch nl) with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ -> Alcotest.fail (arch.Arch.name ^ ": sequential"))
    Arch.all

let test_compact_reduces_area () =
  (* An 8-bit ripple-carry adder: xor3/maj3 pairs that compaction should
     collapse into shared supernodes. *)
  let nl = Netlist.create ~name:"rca8" () in
  let a = Array.init 8 (fun i -> Netlist.input nl (Printf.sprintf "a%d" i)) in
  let b = Array.init 8 (fun i -> Netlist.input nl (Printf.sprintf "b%d" i)) in
  let carry = ref (Netlist.gate nl (Kind.Const false) [||]) in
  Array.iteri
    (fun i _ ->
      let s = Netlist.gate nl Kind.Xor3 [| a.(i); b.(i); !carry |] in
      let c = Netlist.gate nl Kind.Maj3 [| a.(i); b.(i); !carry |] in
      ignore (Netlist.output nl (Printf.sprintf "s%d" i) s);
      carry := c)
    a;
  ignore (Netlist.output nl "cout" !carry);
  List.iter
    (fun arch ->
      let mapped = Techmap.map arch nl in
      let compacted = Compact.run arch nl in
      let before = Techmap.cell_area mapped in
      let after = Techmap.cell_area compacted in
      Alcotest.(check bool)
        (Printf.sprintf "%s: area reduced (%.0f -> %.0f)" arch.Arch.name
           before after)
        true (after < before);
      match Equiv.check_exhaustive nl compacted with
      | Equiv.Equivalent -> ()
      | Equiv.Mismatch _ -> Alcotest.fail "rca8 broken")
    Arch.all

let test_compact_histogram () =
  let nl = random_comb_netlist 5 in
  let compacted = Compact.run Arch.granular_plb nl in
  let hist = Compact.config_histogram compacted in
  Alcotest.(check bool) "histogram non-empty" true (hist <> []);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  let mapped_nodes =
    Array.fold_left
      (fun acc n ->
        match n.Netlist.kind with
        | Kind.Mapped { cell; _ } when Config.of_cell_name cell <> None ->
            acc + 1
        | _ -> acc)
      0 (Netlist.nodes compacted)
  in
  Alcotest.(check int) "histogram covers all supernodes" mapped_nodes total

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vpga_mapper"
    [
      ( "aig",
        [
          Alcotest.test_case "strash and folding" `Quick test_strash;
          Alcotest.test_case "eval" `Quick test_aig_eval;
          Alcotest.test_case "of_netlist" `Quick test_of_netlist;
          qt prop_add_fn_matches_bfun;
        ] );
      ("cut", [ Alcotest.test_case "enumeration" `Quick test_cuts ]);
      ( "flowmap",
        [
          Alcotest.test_case "and3" `Quick test_flowmap_and3;
          Alcotest.test_case "and6" `Quick test_flowmap_and6;
          Alcotest.test_case "monotone in k" `Quick test_flowmap_monotone_k;
          Alcotest.test_case "xor chain" `Quick test_flowmap_xor_chain;
        ] );
      ( "techmap",
        [
          Alcotest.test_case "equivalence" `Quick test_techmap_equivalence;
          Alcotest.test_case "lut usage" `Quick test_techmap_lut_usage;
          Alcotest.test_case "sequential" `Quick test_techmap_sequential;
        ] );
      ( "compact",
        [
          qt prop_compact_equivalence;
          Alcotest.test_case "sequential" `Quick test_compact_sequential;
          Alcotest.test_case "area reduction" `Quick test_compact_reduces_area;
          Alcotest.test_case "histogram" `Quick test_compact_histogram;
          Alcotest.test_case "multi-pass equivalence" `Quick
            test_compact_multipass_equivalence;
        ] );
      ( "incremental labeling",
        [
          qt prop_incremental_labels;
          Alcotest.test_case "traced passes stable" `Quick
            test_compact_traced_passes;
        ] );
    ]
