(* The domain pool (Vpga_par.Pool), the incremental-HPWL bounding boxes
   behind the annealer, and the parallel-sweep determinism contract:
   Experiments.run_all must return the same rows whatever [jobs] is. *)

module Pool = Vpga_par.Pool
module Placement = Vpga_place.Placement
module Global = Vpga_place.Global
module Anneal = Vpga_place.Anneal
module Arch = Vpga_plb.Arch
module Compact = Vpga_mapper.Compact
open Vpga_flow

(* --- Pool ------------------------------------------------------------- *)

let test_results_in_submission_order () =
  (* Tasks finish out of order (earlier tasks sleep longer); results must
     still come back in submission order. *)
  let n = 12 in
  let tasks =
    List.init n (fun i ->
        fun () ->
          Unix.sleepf (0.002 *. float_of_int (n - i));
          i)
  in
  Alcotest.(check (list int))
    "ordered results" (List.init n Fun.id)
    (Pool.run ~jobs:4 tasks)

let test_more_jobs_than_tasks () =
  Alcotest.(check (list int))
    "2 tasks on 8 workers" [ 10; 20 ]
    (Pool.run ~jobs:8 [ (fun () -> 10); (fun () -> 20) ])

let test_sequential_jobs1 () =
  (* jobs = 1 must run inline: side effects happen in submission order. *)
  let log = ref [] in
  let tasks = List.init 5 (fun i -> fun () -> log := i :: !log; i) in
  let results = Pool.run ~jobs:1 tasks in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3; 4 ] results;
  Alcotest.(check (list int)) "inline execution order" [ 4; 3; 2; 1; 0 ] !log

exception Boom of string

let test_exception_propagation () =
  let tasks =
    [
      (fun () -> 1);
      (fun () -> raise (Boom "worker 2 failed"));
      (fun () -> 3);
      (fun () -> 4);
    ]
  in
  match Pool.run ~jobs:3 tasks with
  | _ -> Alcotest.fail "worker exception was swallowed"
  | exception Boom msg ->
      Alcotest.(check string) "exception payload" "worker 2 failed" msg

let test_pool_reuse_and_shutdown () =
  let p = Pool.create ~jobs:3 () in
  let futs = List.init 20 (fun i -> Pool.submit p (fun () -> i * i)) in
  List.iteri
    (fun i fut -> Alcotest.(check int) "future value" (i * i) (Pool.await fut))
    futs;
  Pool.shutdown p;
  Pool.shutdown p (* idempotent *);
  match Pool.submit p (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should fail"
  | exception Invalid_argument _ -> ()

let test_sibling_isolation () =
  (* Regression: a raising task must fail only its own future.  Siblings
     submitted around it still complete, and the pool keeps serving new
     work afterwards — shutdown would hang if the exception had killed a
     worker domain. *)
  let p = Pool.create ~jobs:2 () in
  let futs =
    List.init 10 (fun i ->
        Pool.submit p (fun () ->
            if i mod 3 = 1 then raise (Boom (string_of_int i)) else i))
  in
  List.iteri
    (fun i fut ->
      if i mod 3 = 1 then
        match Pool.await fut with
        | _ -> Alcotest.fail "task failure was swallowed"
        | exception Boom msg ->
            Alcotest.(check string) "own payload" (string_of_int i) msg
      else Alcotest.(check int) "sibling unaffected" i (Pool.await fut))
    futs;
  let more = List.init 4 (fun i -> Pool.submit p (fun () -> i * 10)) in
  Alcotest.(check (list int))
    "pool still serves" [ 0; 10; 20; 30 ]
    (List.map Pool.await more);
  Pool.shutdown p

let test_try_run_captures () =
  (* try_run: each failure lands in its own slot; siblings' results are
     never hidden.  Same contract inline (jobs=1) and pooled. *)
  let thunks =
    List.init 6 (fun i ->
        fun () -> if i mod 2 = 0 then i * 10 else raise (Boom (string_of_int i)))
  in
  List.iter
    (fun jobs ->
      let results = Pool.try_run ~jobs thunks in
      Alcotest.(check int) "all slots present" 6 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v ->
              Alcotest.(check bool) "even slots succeed" true (i mod 2 = 0);
              Alcotest.(check int) "value" (i * 10) v
          | Error (Boom msg) ->
              Alcotest.(check string) "captured payload" (string_of_int i) msg
          | Error _ -> Alcotest.fail "wrong exception captured")
        results)
    [ 1; 4 ]

let test_bounded_queue_backpressure () =
  (* capacity 1, slow workers: submission must block rather than buffer,
     and everything still completes. *)
  let p = Pool.create ~capacity:1 ~jobs:2 () in
  let futs =
    List.init 8 (fun i ->
        Pool.submit p (fun () ->
            Unix.sleepf 0.002;
            i))
  in
  Alcotest.(check (list int))
    "all completed" (List.init 8 Fun.id)
    (List.map Pool.await futs);
  Pool.shutdown p

(* --- Incremental HPWL bounding boxes ---------------------------------- *)

let small_placement () =
  let nl = Vpga_designs.Alu.build ~width:4 () in
  let pl = Placement.create (Compact.run Arch.granular_plb nl) in
  Placement.scatter ~seed:3 pl;
  pl

let test_bbox_matches_scan () =
  let pl = small_placement () in
  let nets = Placement.nets_with_io pl in
  Array.iter
    (fun net ->
      let b = Placement.Bbox.of_net pl net in
      Alcotest.(check (float 1e-9))
        "bbox hpwl = scan hpwl" (Placement.net_hpwl pl net)
        (Placement.Bbox.hpwl b))
    nets

let test_bbox_incremental_consistency () =
  (* Random move sequence: maintain cached bboxes through Bbox.shifted and
     compare the running total against a fresh Placement.hpwl at every
     step.  Exercises the rescan fallback (movers frequently sit alone on
     a net boundary). *)
  let pl = small_placement () in
  let nets = Placement.nets_with_io pl in
  let n_nodes = Array.length pl.Placement.x in
  let incident = Array.make n_nodes [] in
  Array.iteri
    (fun e net -> Array.iter (fun id -> incident.(id) <- e :: incident.(id)) net)
    nets;
  let bbs = Array.map (Placement.Bbox.of_net pl) nets in
  let total =
    ref (Array.fold_left (fun a b -> a +. Placement.Bbox.hpwl b) 0.0 bbs)
  in
  let movable = pl.Placement.graph.Vpga_place.Hypergraph.node_of_vertex in
  let rng = Random.State.make [| 42 |] in
  for step = 1 to 500 do
    let id = movable.(Random.State.int rng (Array.length movable)) in
    let ox = pl.Placement.x.(id) and oy = pl.Placement.y.(id) in
    (* Mix fresh positions with revisited ones so pins land exactly on
       existing bounds (the multiplicity-count paths). *)
    let nx, ny =
      if Random.State.bool rng then
        ( Random.State.float rng pl.Placement.die_w,
          Random.State.float rng pl.Placement.die_h )
      else
        let other = Random.State.int rng n_nodes in
        (pl.Placement.x.(other), pl.Placement.y.(other))
    in
    pl.Placement.x.(id) <- nx;
    pl.Placement.y.(id) <- ny;
    List.iter
      (fun e ->
        let bb' = Placement.Bbox.shifted pl bbs.(e) nets.(e) ~ox ~oy ~nx ~ny in
        total := !total -. Placement.Bbox.hpwl bbs.(e) +. Placement.Bbox.hpwl bb';
        bbs.(e) <- bb')
      incident.(id);
    if step mod 25 = 0 then
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "step %d: incremental total = fresh hpwl" step)
        (Placement.hpwl ~nets pl) !total
  done

let test_anneal_still_improves () =
  (* The incremental annealer on a scattered placement: cost must drop and
     its final cost must equal a fresh full recomputation. *)
  let pl = small_placement () in
  Global.place ~seed:7 pl;
  let before = Placement.hpwl pl in
  let stats = Anneal.refine ~iterations:20000 ~seed:11 pl in
  let after = Placement.hpwl pl in
  Alcotest.(check bool)
    (Printf.sprintf "anneal improves (%.0f -> %.0f)" before after)
    true (after <= before);
  Alcotest.(check bool) "accepted some moves" true (stats.Anneal.accepted > 0)

(* --- Parallel sweep determinism --------------------------------------- *)

let check_rows_identical r1 r2 =
  let check_outcome label (a : Flow.outcome) (b : Flow.outcome) =
    Alcotest.(check (float 0.0)) (label ^ " die area") a.Flow.die_area b.Flow.die_area;
    Alcotest.(check (float 0.0)) (label ^ " wns") a.Flow.wns b.Flow.wns;
    Alcotest.(check (float 0.0)) (label ^ " wirelength") a.Flow.wirelength b.Flow.wirelength;
    Alcotest.(check (float 0.0)) (label ^ " slack") a.Flow.avg_top10_slack b.Flow.avg_top10_slack;
    Alcotest.(check int) (label ^ " tiles") a.Flow.tiles_used b.Flow.tiles_used;
    Alcotest.(check bool) (label ^ " config histogram") true
      (a.Flow.config_histogram = b.Flow.config_histogram)
  in
  List.iter2
    (fun (r1 : Experiments.row) (r2 : Experiments.row) ->
      Alcotest.(check string) "design" r1.Experiments.name r2.Experiments.name;
      List.iter2
        (fun ((p1 : Flow.pair), tag) ((p2 : Flow.pair), _) ->
          check_outcome (r1.Experiments.name ^ "/" ^ tag ^ "/a") p1.Flow.a p2.Flow.a;
          check_outcome (r1.Experiments.name ^ "/" ^ tag ^ "/b") p1.Flow.b p2.Flow.b)
        [ (r1.Experiments.lut, "lut"); (r1.Experiments.granular, "granular") ]
        [ (r2.Experiments.lut, "lut"); (r2.Experiments.granular, "granular") ])
    r1 r2

let test_run_all_jobs_deterministic () =
  let sequential = Experiments.run_all ~seed:1 ~jobs:1 Experiments.Test in
  let parallel = Experiments.run_all ~seed:1 ~jobs:4 Experiments.Test in
  check_rows_identical sequential parallel

let () =
  Alcotest.run "vpga_par"
    [
      ( "pool",
        [
          Alcotest.test_case "submission order" `Quick test_results_in_submission_order;
          Alcotest.test_case "more jobs than tasks" `Quick test_more_jobs_than_tasks;
          Alcotest.test_case "jobs=1 inline" `Quick test_sequential_jobs1;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "reuse and shutdown" `Quick test_pool_reuse_and_shutdown;
          Alcotest.test_case "sibling isolation" `Quick test_sibling_isolation;
          Alcotest.test_case "try_run captures per task" `Quick
            test_try_run_captures;
          Alcotest.test_case "bounded-queue backpressure" `Quick
            test_bounded_queue_backpressure;
        ] );
      ( "incremental hpwl",
        [
          Alcotest.test_case "bbox = scan" `Quick test_bbox_matches_scan;
          Alcotest.test_case "random-move consistency" `Quick
            test_bbox_incremental_consistency;
          Alcotest.test_case "anneal improves" `Quick test_anneal_still_improves;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "run_all jobs=1 == jobs=4" `Slow
            test_run_all_jobs_deterministic;
        ] );
    ]
