(* Tests for the physical-design substrates: max-flow, FM partitioning,
   placement, buffering, routing, quadrisection packing and STA. *)

module Netlist = Vpga_netlist.Netlist
module Kind = Vpga_netlist.Kind
module Equiv = Vpga_netlist.Equiv
module Bfun = Vpga_logic.Bfun
module Maxflow = Vpga_maxflow.Maxflow
module Arch = Vpga_plb.Arch
module Config = Vpga_plb.Config
open Vpga_place
open Vpga_route
module Quadrisect = Vpga_pack.Quadrisect
module Sta = Vpga_timing.Sta
module Techmap = Vpga_mapper.Techmap
module Compact = Vpga_mapper.Compact

(* --- Maxflow ------------------------------------------------------------- *)

let test_maxflow_basic () =
  (* classic 4-node diamond: s=0, t=3 *)
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:3;
  Maxflow.add_edge g ~src:0 ~dst:2 ~cap:2;
  Maxflow.add_edge g ~src:1 ~dst:3 ~cap:2;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:3;
  Maxflow.add_edge g ~src:1 ~dst:2 ~cap:5;
  Alcotest.(check int) "flow" 5 (Maxflow.max_flow g ~source:0 ~sink:3)

let test_maxflow_cut () =
  let g = Maxflow.create 4 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge g ~src:1 ~dst:2 ~cap:1;
  Maxflow.add_edge g ~src:2 ~dst:3 ~cap:1;
  Alcotest.(check int) "chain flow" 1 (Maxflow.max_flow g ~source:0 ~sink:3);
  let side = Maxflow.min_cut_side g ~source:0 in
  Alcotest.(check bool) "source on source side" true side.(0);
  Alcotest.(check bool) "sink off source side" false side.(3)

let test_maxflow_disconnected () =
  let g = Maxflow.create 3 in
  Maxflow.add_edge g ~src:0 ~dst:1 ~cap:7;
  Alcotest.(check int) "no path" 0 (Maxflow.max_flow g ~source:0 ~sink:2)

let prop_maxflow_bounded =
  QCheck.Test.make ~name:"flow bounded by source capacity" ~count:50
    QCheck.(pair small_int small_int)
    (fun (seed, n) ->
      let n = 3 + (n mod 8) in
      let rng = Random.State.make [| seed |] in
      let g = Maxflow.create n in
      let out0 = ref 0 in
      for _ = 1 to 3 * n do
        let a = Random.State.int rng n and b = Random.State.int rng n in
        if a <> b then begin
          let c = 1 + Random.State.int rng 4 in
          Maxflow.add_edge g ~src:a ~dst:b ~cap:c;
          if a = 0 then out0 := !out0 + c
        end
      done;
      Maxflow.max_flow g ~source:0 ~sink:(n - 1) <= !out0)

(* --- FM ------------------------------------------------------------------- *)

let test_fm_splits_cliques () =
  (* two 4-cliques joined by one net: optimal cut is 1 *)
  let clique base = List.init 4 (fun i -> List.init 4 (fun j -> base + ((i + j) mod 4))) in
  ignore clique;
  let nets =
    [
      [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 0; 3 |]; [| 0; 2 |]; [| 1; 3 |];
      [| 4; 5 |]; [| 5; 6 |]; [| 6; 7 |]; [| 4; 7 |]; [| 4; 6 |]; [| 5; 7 |];
      [| 3; 4 |];
    ]
  in
  let nets = Array.of_list nets in
  let areas = Array.make 8 1.0 in
  let r = Fm.run ~seed:3 ~nets ~areas 8 in
  Alcotest.(check int) "cut of joined cliques" 1 r.Fm.cut;
  Alcotest.(check int) "cut consistent" r.Fm.cut (Fm.cut_size nets r.Fm.side)

let prop_fm_never_worse_than_reported =
  QCheck.Test.make ~name:"reported cut matches the partition" ~count:30
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 12 in
      let nets =
        Array.init 20 (fun _ ->
            let a = Random.State.int rng n in
            let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
            [| a; b |])
      in
      let areas = Array.make n 1.0 in
      let r = Fm.run ~seed ~nets ~areas n in
      r.Fm.cut = Fm.cut_size nets r.Fm.side)

let prop_fm_balance =
  QCheck.Test.make ~name:"balance respected" ~count:30 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 16 in
      let nets =
        Array.init 24 (fun _ ->
            let a = Random.State.int rng n in
            let b = (a + 1 + Random.State.int rng (n - 1)) mod n in
            [| a; b |])
      in
      let areas = Array.make n 1.0 in
      let r = Fm.run ~balance:0.6 ~seed ~nets ~areas n in
      let right =
        Array.fold_left (fun acc s -> if s then acc +. 1.0 else acc) 0.0 r.Fm.side
      in
      right <= 0.6 *. float_of_int n +. 1.0
      && float_of_int n -. right <= (0.6 *. float_of_int n) +. 1.0)

(* --- Placement ------------------------------------------------------------- *)

let small_design () =
  let nl = Vpga_designs.Alu.build ~width:4 () in
  Compact.run Arch.granular_plb nl

let test_global_beats_scatter () =
  let nl = small_design () in
  let pl = Placement.create nl in
  Placement.scatter ~seed:7 pl;
  let scattered = Placement.hpwl pl in
  Global.place ~seed:7 pl;
  let placed = Placement.hpwl pl in
  Alcotest.(check bool)
    (Printf.sprintf "global (%.0f) < scatter (%.0f)" placed scattered)
    true (placed < scattered)

let test_anneal_improves () =
  let nl = small_design () in
  let pl = Placement.create nl in
  Global.place ~seed:7 pl;
  let before = Placement.hpwl pl in
  let stats = Anneal.refine ~iterations:20000 ~seed:11 pl in
  let after = Placement.hpwl pl in
  Alcotest.(check bool)
    (Printf.sprintf "anneal %.0f -> %.0f" before after)
    true (after <= before);
  Alcotest.(check bool) "some moves accepted" true (stats.Anneal.accepted > 0)

let test_placement_io_on_boundary () =
  let nl = small_design () in
  let pl = Placement.create nl in
  List.iter
    (fun i -> Alcotest.(check (float 0.0)) "input at x=0" 0.0 pl.Placement.x.(i))
    (Netlist.inputs nl)

(* --- Buffering --------------------------------------------------------------- *)

let test_buffering () =
  let nl = small_design () in
  let buffered = Buffering.insert ~max_fanout:4 nl in
  Alcotest.(check bool) "fanout bounded" true
    (Buffering.max_structural_fanout buffered <= 4);
  match Equiv.check ~seed:5 nl buffered with
  | Equiv.Equivalent -> ()
  | Equiv.Mismatch _ -> Alcotest.fail "buffering broke the design"

let prop_buffering_bounds_fanout =
  QCheck.Test.make ~name:"buffer fanout bound holds for any limit" ~count:8
    (QCheck.int_range 2 9)
    (fun limit ->
      let nl = small_design () in
      Buffering.max_structural_fanout (Buffering.insert ~max_fanout:limit nl)
      <= limit)

(* --- Routing ------------------------------------------------------------------ *)

let test_grid () =
  let g = Grid.create ~cols:4 ~rows:3 ~bin_w:10.0 ~bin_h:10.0 ~capacity:2 () in
  Alcotest.(check int) "bins" 12 (Grid.num_bins g);
  Alcotest.(check int) "edges" (9 + 8) (Grid.num_edges g);
  Alcotest.(check int) "corner has 2 neighbors" 2
    (List.length (Grid.neighbors g 0));
  Alcotest.(check int) "center has 4 neighbors" 4
    (List.length (Grid.neighbors g 5));
  let e = Grid.edge_between g 0 1 in
  Alcotest.(check int) "symmetric" e (Grid.edge_between g 1 0);
  Alcotest.check_raises "non-adjacent"
    (Invalid_argument "Grid.edge_between: bins not adjacent")
    (fun () -> ignore (Grid.edge_between g 0 5))

let test_route_single_net () =
  let g = Grid.create ~cols:5 ~rows:5 ~bin_w:10.0 ~bin_h:10.0 ~capacity:4 () in
  (match Router.route_net g ~pres_fac:1.0 ~pins:[ 0; 24 ] with
  | Some edges ->
      (* manhattan distance between opposite corners is 8 bins *)
      Alcotest.(check int) "shortest path" 8 (List.length edges)
  | None -> Alcotest.fail "unroutable");
  match Router.route_net g ~pres_fac:1.0 ~pins:[ 7; 7 ] with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "same-bin net should use no edges"
  | None -> Alcotest.fail "unroutable"

let test_route_steiner () =
  let g = Grid.create ~cols:5 ~rows:5 ~bin_w:10.0 ~bin_h:10.0 ~capacity:4 () in
  match Router.route_net g ~pres_fac:1.0 ~pins:[ 0; 4; 2 + 20 ] with
  | Some edges ->
      (* tree connecting (0,0),(4,0),(2,4): optimal Steiner length 8 *)
      Alcotest.(check int) "steiner tree" 8 (List.length edges)
  | None -> Alcotest.fail "unroutable"

let test_pathfinder_converges () =
  let nl = small_design () in
  let pl = Placement.create nl in
  Global.place ~seed:3 pl;
  let r = Pathfinder.route_placement pl in
  Alcotest.(check int) "no overflow" 0 r.Pathfinder.final_overflow;
  Alcotest.(check bool) "positive wirelength" true
    (Pathfinder.total_wirelength r > 0.0);
  (* usage accounting is consistent *)
  let recount = Array.make (Grid.num_edges r.Pathfinder.grid) 0 in
  List.iter
    (fun rt -> List.iter (fun e -> recount.(e) <- recount.(e) + 1) rt.Router.edges)
    r.Pathfinder.routes;
  Alcotest.(check bool) "usage matches routes" true
    (recount = r.Pathfinder.grid.Grid.usage)

let test_congestion_negotiation () =
  (* Many nets across a 1-track column must spread over other rows. *)
  let g = Grid.create ~cols:2 ~rows:6 ~bin_w:10.0 ~bin_h:10.0 ~capacity:1 () in
  let routed =
    List.init 4 (fun _ ->
        match Router.route_net g ~pres_fac:2.0 ~pins:[ 0; 1 ] with
        | Some edges ->
            Router.commit g edges;
            edges
        | None -> Alcotest.fail "unroutable")
  in
  ignore routed;
  (* with capacity 1, at least some nets should have taken detours *)
  let lens = List.map List.length routed in
  Alcotest.(check bool) "some detour" true (List.exists (fun l -> l > 1) lens)

let prop_grid_roundtrip =
  QCheck.Test.make ~name:"bin_of (center b) = b" ~count:100
    QCheck.(pair (int_range 2 9) (int_range 2 9))
    (fun (cols, rows) ->
      let g = Grid.create ~cols ~rows ~bin_w:12.0 ~bin_h:9.0 ~capacity:4 () in
      List.for_all
        (fun b ->
          let x, y = Grid.center g b in
          Grid.bin_of g ~x ~y = b)
        (List.init (Grid.num_bins g) Fun.id))

let prop_route_wirelength =
  QCheck.Test.make ~name:"wirelength equals edges times bin size" ~count:50
    QCheck.(pair (int_range 0 24) (int_range 0 24))
    (fun (p1, p2) ->
      let g = Grid.create ~cols:5 ~rows:5 ~bin_w:10.0 ~bin_h:10.0 ~capacity:8 () in
      match Router.route_net g ~pres_fac:1.0 ~pins:[ p1; p2 ] with
      | Some edges ->
          Float.abs
            (Router.wirelength_of g edges
            -. (10.0 *. float_of_int (List.length edges)))
          < 1e-9
      | None -> false)

(* --- STA ------------------------------------------------------------------------ *)

let chain_netlist n =
  let nl = Netlist.create ~name:"chain" () in
  let a = Netlist.input nl "a" in
  let fn = Bfun.lnot Bfun.(var ~arity:2 0 &&& var ~arity:2 1) in
  let b = Netlist.input nl "b" in
  let node = ref a in
  for _ = 1 to n do
    node := Netlist.gate nl (Kind.Mapped { cell = "nd3wi"; fn }) [| !node; b |]
  done;
  ignore (Netlist.output nl "o" !node);
  nl

let test_sta_chain () =
  let nl = chain_netlist 5 in
  let r = Sta.run ~period:2000.0 nl in
  let r1 = Sta.run ~period:2000.0 (chain_netlist 6) in
  Alcotest.(check bool) "longer chain has less slack" true
    (r1.Sta.wns < r.Sta.wns);
  Alcotest.(check int) "critical path covers the chain" (5 + 2)
    (List.length r.Sta.critical_path);
  Alcotest.(check bool) "slack finite" true (r.Sta.wns < 2000.0)

let test_sta_wire_hurts () =
  let nl = chain_netlist 5 in
  let dry = Sta.run nl in
  let wet = Sta.run ~wire:(fun _ -> (50.0, 0.5)) nl in
  Alcotest.(check bool) "wire load slows the design" true
    (wet.Sta.wns < dry.Sta.wns)

let test_sta_criticality () =
  let nl = chain_netlist 5 in
  let r = Sta.run nl in
  let crit = Sta.criticality r in
  (* criticality is highest along the critical path *)
  let max_crit = Array.fold_left max 0.0 crit in
  Alcotest.(check bool) "criticality in [0,1]" true
    (Array.for_all (fun c -> c >= 0.0 && c <= 1.0) crit);
  List.iter
    (fun id ->
      match (Netlist.node nl id).Netlist.kind with
      | Kind.Input -> ()
      | _ ->
          Alcotest.(check bool) "on-path criticality is maximal" true
            (crit.(id) >= max_crit -. 1e-6))
    r.Sta.critical_path

let test_sta_endpoint_count () =
  let nl = small_design () in
  let r = Sta.run nl in
  let n_endpoints =
    List.length (Netlist.outputs nl) + List.length (Netlist.flops nl)
  in
  Alcotest.(check int) "one endpoint per PO and flop" n_endpoints
    (List.length r.Sta.endpoints);
  Alcotest.(check int) "top slacks" 10 (List.length (Sta.top_slacks r 10))

let test_sta_rejects_generic () =
  let nl = Netlist.create () in
  let a = Netlist.input nl "a" in
  let b = Netlist.input nl "b" in
  let x = Netlist.gate nl Kind.And2 [| a; b |] in
  ignore (Netlist.output nl "o" x);
  Alcotest.check_raises "unmapped rejected"
    (Invalid_argument "Sta.run: netlist contains unmapped generic gates")
    (fun () -> ignore (Sta.run nl))

(* --- Quadrisection packing -------------------------------------------------------- *)

let test_quadrisect_legal () =
  let nl = small_design () in
  let nl = Buffering.insert ~max_fanout:8 nl in
  let pl = Placement.create nl in
  Global.place ~seed:5 pl;
  let q = Quadrisect.legalize Arch.granular_plb pl in
  (* every packed item has a tile, and every tile's contents fit *)
  let tiles = Hashtbl.create 64 in
  Array.iteri
    (fun id t ->
      if t >= 0 then
        Hashtbl.replace tiles t
          (id :: Option.value ~default:[] (Hashtbl.find_opt tiles t)))
    q.Quadrisect.tile_of_node;
  Alcotest.(check bool) "tiles in range" true
    (Hashtbl.fold
       (fun t _ acc -> acc && t < q.Quadrisect.cols * q.Quadrisect.rows)
       tiles true);
  Hashtbl.iter
    (fun _ ids ->
      let items =
        List.filter_map
          (fun id -> Quadrisect.item_of_node (Netlist.node nl id))
          ids
      in
      Alcotest.(check bool) "tile fits" true
        (Vpga_plb.Packer.fits Arch.granular_plb items))
    tiles;
  (* every packable node got a tile *)
  Array.iter
    (fun node ->
      match Quadrisect.item_of_node node with
      | Some _ ->
          Alcotest.(check bool) "assigned" true
            (q.Quadrisect.tile_of_node.(node.Netlist.id) >= 0)
      | None -> ())
    (Netlist.nodes nl);
  Alcotest.(check bool) "array area covers cells" true
    (Quadrisect.array_area q > 0.0)

let test_quadrisect_criticality_reduces_disp () =
  (* with criticality all-equal vs focused, displacement of critical cells
     should not grow; we check the weaker, deterministic property that
     legalization is stable for a fixed seed *)
  let nl = small_design () in
  let nl = Buffering.insert ~max_fanout:8 nl in
  let pl = Placement.create nl in
  Global.place ~seed:5 pl;
  let q1 = Quadrisect.legalize Arch.granular_plb pl in
  let q2 = Quadrisect.legalize Arch.granular_plb pl in
  Alcotest.(check bool) "deterministic" true
    (q1.Quadrisect.tile_of_node = q2.Quadrisect.tile_of_node)

let test_refine () =
  let nl = small_design () in
  let nl = Buffering.insert ~max_fanout:8 nl in
  let pl = Placement.create nl in
  Global.place ~seed:5 pl;
  let q = Quadrisect.legalize Arch.granular_plb pl in
  let side = sqrt Arch.granular_plb.Arch.tile_area in
  let pl_b =
    {
      pl with
      Placement.die_w = float_of_int q.Quadrisect.cols *. side;
      die_h = float_of_int q.Quadrisect.rows *. side;
    }
  in
  Quadrisect.snap q pl_b;
  let before = Placement.hpwl pl_b in
  let stats = Vpga_pack.Refine.run ~iterations:20000 ~seed:9 q pl_b in
  let after = Placement.hpwl pl_b in
  Alcotest.(check bool)
    (Printf.sprintf "refine reduces wirelength (%.0f -> %.0f)" before after)
    true (after <= before);
  Alcotest.(check bool) "moves accepted" true (stats.Vpga_pack.Refine.accepted > 0);
  (* all tiles remain feasible after refinement *)
  let tiles = Hashtbl.create 64 in
  Array.iteri
    (fun id t ->
      if t >= 0 then
        Hashtbl.replace tiles t
          (id :: Option.value ~default:[] (Hashtbl.find_opt tiles t)))
    q.Quadrisect.tile_of_node;
  Hashtbl.iter
    (fun _ ids ->
      let items =
        List.filter_map (fun id -> Quadrisect.item_of_node (Netlist.node nl id)) ids
      in
      Alcotest.(check bool) "tile still fits" true
        (Vpga_plb.Packer.fits Arch.granular_plb items))
    tiles;
  (* coordinates track tile centers *)
  Array.iteri
    (fun id t ->
      if t >= 0 then begin
        let x, y = Quadrisect.tile_center q t in
        Alcotest.(check (float 1e-6)) "x snapped" x pl_b.Placement.x.(id);
        Alcotest.(check (float 1e-6)) "y snapped" y pl_b.Placement.y.(id)
      end)
    q.Quadrisect.tile_of_node

let test_quadrisect_lut_arch () =
  let nl = Vpga_designs.Alu.build ~width:4 () in
  let compacted = Compact.run Arch.lut_plb nl in
  let buffered = Buffering.insert ~max_fanout:8 compacted in
  let pl = Placement.create buffered in
  Global.place ~seed:5 pl;
  let q = Quadrisect.legalize Arch.lut_plb pl in
  Alcotest.(check bool) "nonzero tiles" true (q.Quadrisect.tiles_used > 0);
  Alcotest.(check bool) "array covers demand" true
    (q.Quadrisect.cols * q.Quadrisect.rows >= q.Quadrisect.tiles_used)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vpga_physical"
    [
      ( "maxflow",
        [
          Alcotest.test_case "diamond" `Quick test_maxflow_basic;
          Alcotest.test_case "chain cut" `Quick test_maxflow_cut;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          qt prop_maxflow_bounded;
        ] );
      ( "fm",
        [
          Alcotest.test_case "two cliques" `Quick test_fm_splits_cliques;
          qt prop_fm_never_worse_than_reported;
          qt prop_fm_balance;
        ] );
      ( "placement",
        [
          Alcotest.test_case "global beats scatter" `Quick test_global_beats_scatter;
          Alcotest.test_case "anneal improves" `Quick test_anneal_improves;
          Alcotest.test_case "io on boundary" `Quick test_placement_io_on_boundary;
        ] );
      ( "buffering",
        [
          Alcotest.test_case "bounds fanout, keeps function" `Quick test_buffering;
          qt prop_buffering_bounds_fanout;
        ] );
      ( "routing",
        [
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "single net" `Quick test_route_single_net;
          Alcotest.test_case "steiner" `Quick test_route_steiner;
          Alcotest.test_case "pathfinder converges" `Quick test_pathfinder_converges;
          Alcotest.test_case "congestion negotiation" `Quick test_congestion_negotiation;
          qt prop_grid_roundtrip;
          qt prop_route_wirelength;
        ] );
      ( "sta",
        [
          Alcotest.test_case "chain" `Quick test_sta_chain;
          Alcotest.test_case "wire load" `Quick test_sta_wire_hurts;
          Alcotest.test_case "criticality" `Quick test_sta_criticality;
          Alcotest.test_case "endpoints" `Quick test_sta_endpoint_count;
          Alcotest.test_case "rejects generic" `Quick test_sta_rejects_generic;
        ] );
      ( "quadrisect",
        [
          Alcotest.test_case "legal packing" `Quick test_quadrisect_legal;
          Alcotest.test_case "deterministic" `Quick test_quadrisect_criticality_reduces_disp;
          Alcotest.test_case "lut arch" `Quick test_quadrisect_lut_arch;
          Alcotest.test_case "refinement" `Quick test_refine;
        ] );
    ]
